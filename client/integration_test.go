package client

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// newService boots a real irshared server on an httptest listener.
func newService(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return ts
}

// TestClientAgainstRealServer exercises every endpoint end to end through
// the retrying client against the actual service handler.
func TestClientAgainstRealServer(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	ctx := context.Background()
	ring := Graph{Ring: []string{"1", "2", "3", "4", "5"}}

	dec, err := c.Decompose(ctx, &DecomposeRequest{Graph: ring})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Pairs) == 0 || len(dec.Vertices) != 5 {
		t.Fatalf("decompose: %+v", dec)
	}

	alloc, err := c.Allocate(ctx, &AllocateRequest{Graph: ring})
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Utilities) != 5 {
		t.Fatalf("allocate: %+v", alloc)
	}

	utils, err := c.Utilities(ctx, &UtilitiesRequest{Graph: ring})
	if err != nil {
		t.Fatal(err)
	}
	if utils.TotalWeight != "15" {
		t.Fatalf("utilities total weight %q, want 15", utils.TotalWeight)
	}

	ratio, err := c.Ratio(ctx, &RatioRequest{Graph: ring, V: 2, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ratio.LeqTwo {
		t.Fatalf("ratio %q exceeds 2", ratio.Ratio)
	}

	sweep, err := c.Sweep(ctx, &SweepRequest{Graph: ring, V: 2, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Partial || len(sweep.Points) != 9 {
		t.Fatalf("sweep: partial=%v points=%d", sweep.Partial, len(sweep.Points))
	}

	all, err := c.SweepAll(ctx, &SweepRequest{Graph: ring, V: 2, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Points) != len(sweep.Points) || all.Ratio != sweep.Ratio || all.BestU != sweep.BestU {
		t.Fatalf("SweepAll diverged from Sweep: %+v vs %+v", all, sweep)
	}
	for i := range all.Points {
		if all.Points[i] != sweep.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, all.Points[i], sweep.Points[i])
		}
	}

	// Error mapping: a non-ring ratio request is a non-retryable 400.
	_, err = c.Ratio(ctx, &RatioRequest{Graph: Graph{Path: []string{"1", "2"}}})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != server.CodeNotRing {
		t.Fatalf("want not_ring APIError, got %v", err)
	}
}

// TestSweepAllResumesAcrossTimeouts runs a sweep against a server whose
// request timeout is far too small for the whole grid, forcing partial
// responses, and checks the client's automatic resumption reassembles the
// exact result an unconstrained server produces.
func TestSweepAllResumesAcrossTimeouts(t *testing.T) {
	ring := Graph{Ring: []string{"1", "3/2", "2", "1/2", "5", "7/3", "4"}}
	const grid = 96

	reference := newService(t, server.Config{MaxQueueDepth: -1})
	want, err := New(reference.URL, WithSeed(1)).Sweep(context.Background(), &SweepRequest{Graph: ring, V: 1, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if want.Partial {
		t.Fatal("reference sweep unexpectedly partial")
	}

	tight := newService(t, server.Config{MaxQueueDepth: -1, RequestTimeout: 30 * time.Millisecond})
	var partials int
	c := New(tight.URL, WithSeed(7), WithBackoff(time.Millisecond, 10*time.Millisecond), WithMaxAttempts(50),
		WithRetryHook(func(int, error, time.Duration) { partials++ }))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := c.SweepAll(ctx, &SweepRequest{Graph: ring, V: 1, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("resumed sweep has %d points, want %d", len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("point %d: resumed %+v != reference %+v", i, got.Points[i], want.Points[i])
		}
	}
	if got.BestW1 != want.BestW1 || got.BestU != want.BestU || got.Ratio != want.Ratio || got.Honest != want.Honest {
		t.Fatalf("resumed summary differs:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestResumeTokenRejectedForDifferentRequest checks the server-side token
// validation through the client: a token minted for one (graph, v, grid) is
// rejected with code partial_result when replayed against another.
func TestResumeTokenRejectedForDifferentRequest(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1, RequestTimeout: 20 * time.Millisecond})
	c := New(ts.URL, WithSeed(3), WithBackoff(time.Millisecond, 10*time.Millisecond), WithMaxAttempts(20))
	ring := Graph{Ring: []string{"1", "2", "3", "4", "5", "6", "7", "8"}}
	ctx := context.Background()

	// Mint a token by sweeping a big grid against the tight timeout. If the
	// server happens to finish in one shot, grow the grid and try again.
	var token string
	for grid := 512; grid <= 4096 && token == ""; grid *= 2 {
		resp, err := c.Sweep(ctx, &SweepRequest{Graph: ring, V: 0, Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Partial {
			token = resp.ResumeToken
		}
	}
	if token == "" {
		t.Skip("server never produced a partial result; cannot mint a token")
	}
	_, err := c.Sweep(ctx, &SweepRequest{Graph: ring, V: 1, Grid: 4, Resume: token})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != server.CodePartialResult || apiErr.Status != 400 {
		t.Fatalf("want partial_result 400, got %v", err)
	}
}

package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingSequenceCoversAllNodes: every key's failover sequence visits each
// member exactly once, starting at its primary placement.
func TestRingSequenceCoversAllNodes(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(nodes, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("instance-%d", i)
		seq := r.sequence(key)
		if len(seq) != len(nodes) {
			t.Fatalf("sequence(%q) has %d nodes, want %d: %v", key, len(seq), len(nodes), seq)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence(%q) repeats %q: %v", key, n, seq)
			}
			seen[n] = true
		}
	}
}

// TestRingOrderIndependence: the seed list's order must not matter — every
// router over the same members has to agree on placement, or two routers in
// front of one cluster would send the same instance to different nodes.
func TestRingOrderIndependence(t *testing.T) {
	a := newRing([]string{"http://a", "http://b", "http://c"}, 64)
	b := newRing([]string{"http://c", "http://a", "http://b"}, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if !reflect.DeepEqual(a.sequence(key), b.sequence(key)) {
			t.Fatalf("sequence(%q) depends on seed order: %v vs %v",
				key, a.sequence(key), b.sequence(key))
		}
	}
}

// TestRingSpreadsPrimaries: with 64 vnodes per member, primary placement
// over a modest key population must reach every node — a node that never
// owns a key would make the ring a very expensive single-node proxy.
func TestRingSpreadsPrimaries(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r := newRing(nodes, 64)
	primaries := map[string]int{}
	const keys = 300
	for i := 0; i < keys; i++ {
		primaries[r.sequence(fmt.Sprintf("key-%d", i))[0]]++
	}
	for _, n := range nodes {
		if primaries[n] == 0 {
			t.Fatalf("node %q is never a primary over %d keys: %v", n, keys, primaries)
		}
	}
}

// TestRingStableUnderMembershipFilter pins the design choice that aliveness
// filters selection, not placement: dropping a node from consideration
// leaves the relative order of the survivors untouched, so keys owned by
// live nodes never move when some other node flaps.
func TestRingStableUnderMembershipFilter(t *testing.T) {
	r := newRing([]string{"http://a", "http://b", "http://c"}, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.sequence(key)
		dead := seq[2] // kill the last replica
		var filtered []string
		for _, n := range seq {
			if n != dead {
				filtered = append(filtered, n)
			}
		}
		if !reflect.DeepEqual(filtered, seq[:2]) {
			t.Fatalf("filtering %q reshuffled survivors for %q: %v vs %v", dead, key, filtered, seq[:2])
		}
	}
}

package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestSampleCurveBasics(t *testing.T) {
	g := graph.Ring(numeric.Ints(4, 1, 2, 3))
	curve, err := SampleCurve(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 9 {
		t.Fatalf("len = %d", len(curve))
	}
	if !curve[0].X.IsZero() || !curve[8].X.Equal(numeric.FromInt(4)) {
		t.Fatalf("endpoints %v %v", curve[0].X, curve[8].X)
	}
	// The truthful endpoint must match the plain decomposition.
	d, err := bottleneck.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if !curve[8].U.Equal(d.Utility(g, 0)) {
		t.Fatalf("truthful sample %v != %v", curve[8].U, d.Utility(g, 0))
	}
}

func TestSampleCurveErrors(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 1, 1))
	if _, err := SampleCurve(g, 7, 4); err == nil {
		t.Error("bad vertex accepted")
	}
	if _, err := SampleCurve(g, 0, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestTheorem10OnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.RandomRing(rng, rng.Intn(8)+3, graph.WeightDist(rng.Intn(4)))
		} else {
			g = graph.RandomConnected(rng, rng.Intn(7)+2, 0.5, graph.WeightDist(rng.Intn(4)))
		}
		v := rng.Intn(g.N())
		curve, err := SampleCurve(g, v, 24)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyTheorem10(curve); err != nil {
			t.Fatalf("trial %d (v=%d, w=%v): %v", trial, v, g.Weights(), err)
		}
	}
}

func TestVerifyTheorem10Detects(t *testing.T) {
	bad := []CurvePoint{
		{X: numeric.Zero, U: numeric.One},
		{X: numeric.One, U: numeric.Zero},
	}
	if VerifyTheorem10(bad) == nil {
		t.Fatal("violation not detected")
	}
}

func TestAlphaCaseB1(t *testing.T) {
	// A light vertex wedged between heavy neighbors stays in C class for
	// every report: ring (x, 50, 1, 50) at v=0 — hmm, choose v light.
	g := graph.Ring(numeric.Ints(2, 50, 50, 50))
	curve, err := SampleCurve(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifyAlphaCurve(curve)
	if err != nil {
		t.Fatal(err)
	}
	if c != CaseB1 {
		t.Fatalf("case = %v, want B-1", c)
	}
}

func TestAlphaCaseB2(t *testing.T) {
	// Case B-2 needs v in B class even as x → 0⁺, which happens when v's
	// whole neighborhood is already covered by another bottleneck's C side:
	// on the path H(100) - u(1) - v(x) - u'(1) - H'(100), the maximal
	// bottleneck is {H, v, H'} for every x ≥ 0 (v joins for free since
	// Γ(v) = {u, u'} ⊆ C), so α_v(x) = 2/(200+x) is non-increasing and v
	// stays in B class throughout.
	g := graph.Path(numeric.Ints(100, 1, 4, 1, 100))
	curve, err := SampleCurve(g, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifyAlphaCurve(curve)
	if err != nil {
		t.Fatal(err)
	}
	if c != CaseB2 {
		t.Fatalf("case = %v, want B-2", c)
	}
}

func TestAlphaCaseB3(t *testing.T) {
	// Heavy vertex on a light ring: C class for small reports, B class for
	// large ones.
	g := graph.Ring(numeric.Ints(40, 1, 1, 1, 1))
	curve, err := SampleCurve(g, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifyAlphaCurve(curve)
	if err != nil {
		t.Fatal(err)
	}
	if c != CaseB3 {
		t.Fatalf("case = %v, want B-3", c)
	}
}

func TestClassifyAlphaOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	seen := map[AlphaCase]int{}
	for trial := 0; trial < 50; trial++ {
		g := graph.RandomRing(rng, rng.Intn(8)+3, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(g.N())
		curve, err := SampleCurve(g, v, 24)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ClassifyAlphaCurve(curve)
		if err != nil {
			t.Fatalf("trial %d (v=%d, w=%v): %v", trial, v, g.Weights(), err)
		}
		seen[c]++
	}
	if len(seen) < 2 {
		t.Errorf("expected at least two α-cases in 50 random rings: %v", seen)
	}
}

func TestIntervalPartition(t *testing.T) {
	g := graph.Ring(numeric.Ints(40, 1, 1, 1, 1))
	ivs, err := IntervalPartition(g, 0, 32, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) < 2 {
		t.Fatalf("expected multiple intervals for a heavy vertex, got %d", len(ivs))
	}
	if !ivs[0].Lo.IsZero() || !ivs[len(ivs)-1].Hi.Equal(numeric.FromInt(40)) {
		t.Fatalf("span %v..%v", ivs[0].Lo, ivs[len(ivs)-1].Hi)
	}
	for i := 0; i+1 < len(ivs); i++ {
		if ivs[i].Signature == ivs[i+1].Signature {
			t.Errorf("adjacent intervals %d, %d share a signature", i, i+1)
		}
		if ivs[i+1].Lo.Less(ivs[i].Hi) {
			t.Errorf("intervals overlap at %d", i)
		}
	}
}

func TestSweepTransitionsVerifiesProp12(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	events := 0
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomRing(rng, rng.Intn(7)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		log, err := SweepTransitions(g, v, 24, 40)
		if err != nil {
			t.Fatalf("trial %d (v=%d, w=%v): %v", trial, v, g.Weights(), err)
		}
		events += len(log.Transitions)
	}
	if events == 0 {
		t.Error("no breakpoints observed across 25 random rings")
	}
}

func TestLemma13OnRandomRings(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomRing(rng, rng.Intn(7)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		// Check Lemma 13 on each structure interval (class is constant
		// there, trivially satisfying the precondition).
		ivs, err := IntervalPartition(g, v, 16, 30)
		if err != nil {
			t.Fatal(err)
		}
		for _, iv := range ivs {
			if iv.Lo.Equal(iv.Hi) {
				continue
			}
			da, err := decAt(g, v, iv.Lo)
			if err != nil {
				t.Fatal(err)
			}
			db, err := decAt(g, v, iv.Hi)
			if err != nil {
				t.Fatal(err)
			}
			ca, cb := da.ClassOf(v), db.ClassOf(v)
			if !(ca.IsB() && cb.IsB()) && !(ca.IsC() && cb.IsC()) {
				continue // class flips exactly at a boundary sample
			}
			if err := VerifyLemma13(g, v, iv.Lo, iv.Hi); err != nil {
				t.Fatalf("trial %d interval [%v, %v]: %v", trial, iv.Lo, iv.Hi, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no Lemma 13 checks performed")
	}
}

func TestLemma13AcrossClassStableSpan(t *testing.T) {
	// Also check across multiple intervals when the class never flips.
	g := graph.Ring(numeric.Ints(40, 1, 1, 1, 1))
	curve, err := SampleCurve(g, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Find a maximal C-class prefix and check its span.
	var a, b numeric.Rat
	found := false
	for _, pt := range curve[1:] {
		if pt.Class.IsC() {
			if !found {
				a, found = pt.X, true
			}
			b = pt.X
		} else {
			break
		}
	}
	if !found || a.Equal(b) {
		t.Skip("no C-class span on this instance")
	}
	if err := VerifyLemma13(g, 0, a, b); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyProp12TransitionRejectsGarbage(t *testing.T) {
	// Two unrelated decompositions must fail the check.
	g1 := graph.Path(numeric.Ints(1, 100, 1))
	g2 := graph.Path(numeric.Ints(1, 1, 100, 50, 2))
	d1, err := bottleneck.Decompose(g1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bottleneck.Decompose(g2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyProp12Transition(d1, d2, 1); err == nil {
		t.Error("unrelated decompositions passed Prop 12 check")
	}
}

func TestTransitionKindString(t *testing.T) {
	if TransitionMerge.String() != "merge" || TransitionSplit.String() != "split" || TransitionNone.String() != "none" {
		t.Error("TransitionKind.String wrong")
	}
}

func TestAlphaContinuityAtBreakpoints(t *testing.T) {
	// Fig. 3's α-coincidence: α_v is continuous across every structure
	// breakpoint (the merging/splitting pairs' ratios meet there).
	rng := rand.New(rand.NewSource(65))
	checked := 0
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomRing(rng, rng.Intn(7)+3, graph.WeightDist(rng.Intn(3)))
		v := rng.Intn(g.N())
		ivs, err := IntervalPartition(g, v, 20, 44)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAlphaContinuity(g, v, ivs, 1e-9); err != nil {
			t.Fatalf("trial %d (w=%v, v=%d): %v", trial, g.Weights(), v, err)
		}
		checked += len(ivs) - 1
	}
	if checked == 0 {
		t.Error("no breakpoints checked")
	}
}

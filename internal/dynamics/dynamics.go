// Package dynamics simulates the proportional response dynamics
// (Definition 1 of the paper, Wu & Zhang STOC'07):
//
//	x_vu(0)   = w_v / d_v
//	x_vu(t+1) = x_uv(t) / Σ_k x_kv(t) · w_v
//
// i.e. each agent answers the resource received from each neighbor in
// proportion. Wu & Zhang proved the dynamics converges to the BD allocation
// (Proposition 6); experiment E10 measures that convergence against the
// exact allocation from package allocation.
//
// Unlike the exact mechanism, the simulator runs in float64: iterating the
// recurrence in exact rationals would grow denominators exponentially, and
// the object of study here is the trajectory, not the limit (the limit is
// computed exactly elsewhere). Updates within a round are data-parallel and
// executed on a worker pool.
//
// Empirical convergence rates (experiment E10): geometric toward pairs with
// α < 1, but only Θ(1/t) toward degenerate α = 1 equilibria in which some
// equilibrium transfer is exactly zero (e.g. the ring 512-512-1024, where
// x_{01} decays like 1/t). Damping does not remove the sublinear phase; it
// is inherent to the multiplicative update at the boundary of the simplex.
package dynamics

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/par"
)

// Options configures a simulation run.
type Options struct {
	// MaxRounds bounds the iteration count (default 10_000).
	MaxRounds int
	// Tol declares convergence when the max absolute change of any transfer
	// between consecutive rounds falls below it (default 1e-12).
	Tol float64
	// Damping θ ∈ [0, 1) mixes the new state with the old:
	// x ← (1-θ)·x_new + θ·x_old. 0 is the paper's plain dynamics.
	Damping float64
	// Workers sets the parallel worker count (≤ 0 = GOMAXPROCS).
	Workers int
	// TargetUtilities, when non-nil, enables per-round error tracking
	// against the exact equilibrium utilities (e.g. Proposition 6 values).
	TargetUtilities []numeric.Rat
	// InitialTransfers, when non-nil, warm-starts the dynamics from the
	// given state instead of the equal split w_v/d_v: InitialTransfers[v][j]
	// is what v sends to its j-th neighbor (graph adjacency order). Used to
	// verify fixed points: starting at the BD allocation must stay there.
	InitialTransfers [][]float64
}

// Result is the outcome of a simulation.
type Result struct {
	// X holds the final transfers: X[v][j] is what v sends to its j-th
	// neighbor (graph adjacency order).
	X [][]float64
	// Utilities holds the final per-vertex utilities.
	Utilities []float64
	// Rounds is the number of update rounds executed.
	Rounds int
	// Converged reports whether Tol was reached before MaxRounds.
	Converged bool
	// UtilityError, when target utilities were supplied, records the L∞
	// utility error after each round (UtilityError[0] is the error of the
	// initial state).
	UtilityError []float64
}

// Run simulates the proportional response dynamics on g.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("dynamics: empty graph")
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 10000
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-12
	}
	if opts.Damping < 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("dynamics: damping %v outside [0, 1)", opts.Damping)
	}
	if opts.TargetUtilities != nil && len(opts.TargetUtilities) != g.N() {
		return nil, fmt.Errorf("dynamics: %d target utilities for %d vertices",
			len(opts.TargetUtilities), g.N())
	}

	n := g.N()
	w := make([]float64, n)
	for v := 0; v < n; v++ {
		w[v] = g.Weight(v).Float64()
	}
	// reverse[v][j] = position of v in the adjacency list of its j-th
	// neighbor, so incoming transfers can be read without search.
	reverse := make([][]int, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		reverse[v] = make([]int, len(nb))
		for j, u := range nb {
			reverse[v][j] = indexOf(g.Neighbors(u), v)
		}
	}

	if opts.InitialTransfers != nil && len(opts.InitialTransfers) != n {
		return nil, fmt.Errorf("dynamics: %d initial transfer rows for %d vertices",
			len(opts.InitialTransfers), n)
	}
	x := make([][]float64, n)
	next := make([][]float64, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		x[v] = make([]float64, d)
		next[v] = make([]float64, d)
		if opts.InitialTransfers != nil {
			if len(opts.InitialTransfers[v]) != d {
				return nil, fmt.Errorf("dynamics: initial transfers of vertex %d have %d entries for degree %d",
					v, len(opts.InitialTransfers[v]), d)
			}
			copy(x[v], opts.InitialTransfers[v])
			continue
		}
		for j := range x[v] {
			x[v][j] = w[v] / float64(d)
		}
	}

	var target []float64
	if opts.TargetUtilities != nil {
		target = make([]float64, n)
		for v := range target {
			target[v] = opts.TargetUtilities[v].Float64()
		}
	}

	res := &Result{}
	utilities := make([]float64, n)
	recordError := func() {
		if target == nil {
			return
		}
		maxErr := 0.0
		for v := 0; v < n; v++ {
			if e := math.Abs(utilities[v] - target[v]); e > maxErr {
				maxErr = e
			}
		}
		res.UtilityError = append(res.UtilityError, maxErr)
	}

	computeUtilities := func(state [][]float64) {
		par.ForEach(n, opts.Workers, func(v int) {
			total := 0.0
			for j, u := range g.Neighbors(v) {
				total += state[u][reverse[v][j]]
			}
			utilities[v] = total
		})
	}

	computeUtilities(x)
	recordError()

	maxDelta := make([]float64, n)
	for round := 0; round < opts.MaxRounds; round++ {
		// x_vu(t+1) = x_uv(t)/U_v(t) · w_v, with the equal-split fallback
		// when v received nothing this round (U_v = 0 happens only in
		// degenerate zero-weight neighborhoods).
		par.ForEach(n, opts.Workers, func(v int) {
			d := len(next[v])
			delta := 0.0
			for j, u := range g.Neighbors(v) {
				incoming := x[u][reverse[v][j]]
				var nv float64
				if utilities[v] > 0 {
					nv = incoming / utilities[v] * w[v]
				} else {
					nv = w[v] / float64(d)
				}
				nv = (1-opts.Damping)*nv + opts.Damping*x[v][j]
				if diff := math.Abs(nv - x[v][j]); diff > delta {
					delta = diff
				}
				next[v][j] = nv
			}
			maxDelta[v] = delta
		})
		x, next = next, x
		computeUtilities(x)
		recordError()
		res.Rounds = round + 1
		worst := 0.0
		for _, d := range maxDelta {
			if d > worst {
				worst = d
			}
		}
		if worst < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.X = x
	res.Utilities = append([]float64(nil), utilities...)
	return res, nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	panic("dynamics: adjacency not symmetric")
}

// FinalUtilityError returns the last recorded utility error, or NaN when no
// targets were tracked.
func (r *Result) FinalUtilityError() float64 {
	if len(r.UtilityError) == 0 {
		return math.NaN()
	}
	return r.UtilityError[len(r.UtilityError)-1]
}

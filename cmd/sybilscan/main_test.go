package main

import (
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestRingsMode(t *testing.T) {
	out, err := runCapture(t, "rings", "-n", "6", "-trials", "5", "-grid", "16", "-top", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "top 3 of 5") || !strings.Contains(out, "ζ =") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFamilyMode(t *testing.T) {
	out, err := runCapture(t, "family", "-kmax", "2", "-grid", "32", "-heavy", "1000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "k=0") || !strings.Contains(out, "k=2") || !strings.Contains(out, "limit=5/3") {
		t.Errorf("output:\n%s", out)
	}
}

func TestGeneralMode(t *testing.T) {
	out, err := runCapture(t, "general", "-n", "4", "-trials", "4", "-gridres", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst ratio") || !strings.Contains(out, "≤ 2") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSweepMode(t *testing.T) {
	out, err := runCapture(t, "sweep", "-n", "9", "-grid", "24", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"incremental engine", "best sampled split", "solver:", "caches:", "cold baseline (identical results)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSweepModeCold(t *testing.T) {
	out, err := runCapture(t, "sweep", "-n", "7", "-grid", "12", "-cold")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cold engine") || strings.Contains(out, "cold baseline") {
		t.Errorf("output:\n%s", out)
	}
}

func TestDistributions(t *testing.T) {
	for _, d := range []string{"uniform", "skewed", "powers", "unit"} {
		if _, err := runCapture(t, "rings", "-n", "4", "-trials", "2", "-grid", "8", "-dist", d); err != nil {
			t.Errorf("dist %s: %v", d, err)
		}
	}
}

func TestScanErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"rings", "-dist", "weird"},
		{"family", "-heavy", "abc"},
	}
	for _, args := range cases {
		if _, err := runCapture(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

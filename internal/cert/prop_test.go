package cert_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// The property the checker must have: it accepts every certificate the
// builder produces from a correct solver answer, and it rejects every
// mutation of such a certificate — a perturbed cover, a doctored witness, a
// truncated inequality chain. Acceptance is exercised on random instances;
// rejection through a catalogue of targeted mutations applied to freshly
// built certificates.

func deepCopy[T any](t *testing.T, c *T) *T {
	t.Helper()
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	out := new(T)
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func mustFail(t *testing.T, name string, c cert.Checkable) {
	t.Helper()
	if err := cert.Check(c); err == nil {
		t.Fatalf("mutation %q: checker accepted a corrupted certificate", name)
	}
}

func buildRatioCert(t *testing.T, ws []int64, v int) (*cert.RatioCert, *core.Instance) {
	t.Helper()
	ctx := context.Background()
	g := ringOf(ws)
	in, err := core.NewInstanceCtx(ctx, g, v)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: 12})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := build.Ratio(ctx, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Check(rc); err != nil {
		t.Fatalf("pristine certificate rejected: %v", err)
	}
	return rc, in
}

func ringOf(ws []int64) *graph.Graph {
	rs := make([]numeric.Rat, len(ws))
	for i, w := range ws {
		rs[i] = numeric.FromInt(w)
	}
	return graph.Ring(rs)
}

func TestPropertyRandomInstancesCertify(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	done := 0
	for done < 30 {
		n := 3 + rng.Intn(6)
		g := graph.RandomRing(rng, n, graph.DistUniform)
		v := rng.Intn(n)
		in, err := core.NewInstanceCtx(ctx, g, v)
		if err != nil {
			continue
		}
		opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: 8})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := build.Ratio(ctx, in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := cert.Check(rc); err != nil {
			t.Fatalf("random instance %d (n=%d v=%d): %v", done, n, v, err)
		}
		done++
	}
}

func TestMutatedDecompositionCertsFail(t *testing.T) {
	rc, _ := buildRatioCert(t, []int64{3, 1, 2, 1, 5}, 0)
	base := &rc.Ring

	t.Run("schema", func(t *testing.T) {
		m := deepCopy(t, base)
		m.Schema = "bd-cert/v0"
		mustFail(t, "schema", m)
	})
	t.Run("alpha_perturbed", func(t *testing.T) {
		m := deepCopy(t, base)
		m.Pairs[0].Alpha = "1/9999"
		mustFail(t, "alpha_perturbed", m)
	})
	t.Run("pair_dropped", func(t *testing.T) {
		m := deepCopy(t, base)
		if len(m.Pairs) < 2 {
			t.Skip("single-pair cover")
		}
		m.Pairs = m.Pairs[:len(m.Pairs)-1]
		mustFail(t, "pair_dropped", m)
	})
	t.Run("bc_swapped", func(t *testing.T) {
		m := deepCopy(t, base)
		for i := range m.Pairs {
			if len(m.Pairs[i].B) != len(m.Pairs[i].C) || m.Pairs[i].B[0] != m.Pairs[i].C[0] {
				m.Pairs[i].B, m.Pairs[i].C = m.Pairs[i].C, m.Pairs[i].B
				mustFail(t, "bc_swapped", m)
				return
			}
		}
		t.Skip("only self-pairs")
	})
	t.Run("witness_truncated", func(t *testing.T) {
		m := deepCopy(t, base)
		for i := range m.Pairs {
			if len(m.Pairs[i].Witness) > 0 {
				m.Pairs[i].Witness = m.Pairs[i].Witness[:len(m.Pairs[i].Witness)-1]
				mustFail(t, "witness_truncated", m)
				return
			}
		}
		t.Skip("no nonzero witnesses")
	})
	t.Run("witness_flow_perturbed", func(t *testing.T) {
		m := deepCopy(t, base)
		for i := range m.Pairs {
			if len(m.Pairs[i].Witness) > 0 {
				m.Pairs[i].Witness[0].Flow = "1000000"
				mustFail(t, "witness_flow_perturbed", m)
				return
			}
		}
		t.Skip("no nonzero witnesses")
	})
	t.Run("utility_perturbed", func(t *testing.T) {
		m := deepCopy(t, base)
		m.Utilities[0] = "424242"
		mustFail(t, "utility_perturbed", m)
	})
	t.Run("weight_perturbed", func(t *testing.T) {
		m := deepCopy(t, base)
		m.Instance.Weights[1] = "999"
		mustFail(t, "weight_perturbed", m)
	})
	t.Run("noncanonical_rational", func(t *testing.T) {
		m := deepCopy(t, base)
		// Same value, non-canonical spelling: textual identity must break.
		m.Instance.Weights[0] = m.Instance.Weights[0] + "/1"
		if !strings.Contains(m.Instance.Weights[0], "//") {
			mustFail(t, "noncanonical_rational", m)
		}
	})
	t.Run("vertex_uncovered", func(t *testing.T) {
		m := deepCopy(t, base)
		for i := range m.Pairs {
			if len(m.Pairs[i].C) > 0 && !intsEqual(m.Pairs[i].B, m.Pairs[i].C) {
				m.Pairs[i].C = m.Pairs[i].C[:len(m.Pairs[i].C)-1]
				mustFail(t, "vertex_uncovered", m)
				return
			}
		}
		t.Skip("no non-self C sets")
	})
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMutatedRatioCertsFail(t *testing.T) {
	rc, _ := buildRatioCert(t, []int64{3, 1, 2, 1, 5}, 0)

	t.Run("ratio_doubled", func(t *testing.T) {
		m := deepCopy(t, rc)
		m.Ratio = "2"
		if m.Ratio == rc.Ratio {
			t.Skip("ratio already 2")
		}
		mustFail(t, "ratio_doubled", m)
	})
	t.Run("honest_bumped", func(t *testing.T) {
		m := deepCopy(t, rc)
		m.Honest = "123456"
		mustFail(t, "honest_bumped", m)
	})
	t.Run("best_u_lowered", func(t *testing.T) {
		m := deepCopy(t, rc)
		m.Best.U = "0"
		if m.Best.U == rc.Best.U {
			t.Skip("best already zero")
		}
		mustFail(t, "best_u_lowered", m)
	})
	t.Run("leq_two_cleared", func(t *testing.T) {
		m := deepCopy(t, rc)
		m.LeqTwo = false
		mustFail(t, "leq_two_cleared", m)
	})
	t.Run("chain_truncated_pieces", func(t *testing.T) {
		m := deepCopy(t, rc)
		if len(m.Pieces) == 0 {
			t.Skip("no pieces")
		}
		m.Pieces = m.Pieces[:len(m.Pieces)-1]
		mustFail(t, "chain_truncated_pieces", m)
	})
	t.Run("boundary_dropped", func(t *testing.T) {
		m := deepCopy(t, rc)
		if len(m.Boundary) == 0 {
			t.Skip("no boundary brackets")
		}
		m.Boundary = m.Boundary[:len(m.Boundary)-1]
		mustFail(t, "boundary_dropped", m)
	})
	t.Run("formula_forged", func(t *testing.T) {
		m := deepCopy(t, rc)
		for i := range m.Pieces {
			if m.Pieces[i].FormulaExact {
				m.Pieces[i].Num[0] = "77777"
				mustFail(t, "formula_forged", m)
				return
			}
		}
		t.Skip("no exact formulas")
	})
	t.Run("piece_best_outside", func(t *testing.T) {
		m := deepCopy(t, rc)
		if len(m.Pieces) < 2 {
			t.Skip("need two pieces")
		}
		m.Pieces[0].Best, m.Pieces[1].Best = m.Pieces[1].Best, m.Pieces[0].Best
		mustFail(t, "piece_best_outside", m)
	})
}

func TestMutatedSweepCertsFail(t *testing.T) {
	ctx := context.Background()
	g := ringOf([]int64{3, 1, 2, 1, 5})
	in, err := core.NewInstanceCtx(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sybil.SweepInstanceCtx(ctx, in, sybil.SweepOptions{Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := build.Sweep(ctx, in, res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Check(sc); err != nil {
		t.Fatalf("pristine sweep certificate rejected: %v", err)
	}

	t.Run("best_index_shifted", func(t *testing.T) {
		m := deepCopy(t, sc)
		m.BestIndex = (m.BestIndex + 1) % len(m.Points)
		mustFail(t, "best_index_shifted", m)
	})
	t.Run("point_dropped", func(t *testing.T) {
		// Dropping the LAST point yields a valid shorter partial sweep (the
		// certificate's coverage is [Start, Start+len)), so corrupt the
		// interior instead: removing a middle point shifts every later
		// point off its grid position.
		m := deepCopy(t, sc)
		mid := len(m.Points) / 2
		m.Points = append(m.Points[:mid], m.Points[mid+1:]...)
		if m.BestIndex >= len(m.Points) {
			m.BestIndex = 0
		}
		mustFail(t, "point_dropped", m)
	})
	t.Run("grid_changed", func(t *testing.T) {
		m := deepCopy(t, sc)
		m.Grid++
		mustFail(t, "grid_changed", m)
	})
	t.Run("points_swapped", func(t *testing.T) {
		m := deepCopy(t, sc)
		m.Points[0], m.Points[1] = m.Points[1], m.Points[0]
		mustFail(t, "points_swapped", m)
	})
	t.Run("ratio_perturbed", func(t *testing.T) {
		m := deepCopy(t, sc)
		m.Ratio = "3/2"
		if m.Ratio == sc.Ratio {
			m.Ratio = "4/3"
		}
		mustFail(t, "ratio_perturbed", m)
	})
}

// TestSolverFreeCheck pins the package contract structurally: a certificate
// decoded from bytes alone must verify, proving the checker needs no solver
// state. (That internal/cert imports no solver package is enforced by the
// compiler — see the import list of check.go.)
func TestSolverFreeCheck(t *testing.T) {
	rc, _ := buildRatioCert(t, []int64{1, 2, 3, 4}, 2)
	b, err := json.Marshal(rc)
	if err != nil {
		t.Fatal(err)
	}
	fresh := new(cert.RatioCert)
	if err := json.Unmarshal(b, fresh); err != nil {
		t.Fatal(err)
	}
	if err := cert.Check(fresh); err != nil {
		t.Fatal(err)
	}
	// The decomposition certificate also re-checks standalone.
	db, err := json.Marshal(&rc.Ring)
	if err != nil {
		t.Fatal(err)
	}
	dc := new(cert.DecompositionCert)
	if err := json.Unmarshal(db, dc); err != nil {
		t.Fatal(err)
	}
	if err := cert.Check(dc); err != nil {
		t.Fatal(err)
	}
}

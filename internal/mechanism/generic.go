package mechanism

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sybil"
)

// RingSweep evaluates the two-identity Sybil split curve of agent v on ring
// g under mechanism m, over the same uniform w1 grid as sybil.RingSweep.
// Mechanisms implementing RingSweeper (BD) are delegated to their native
// sweep engine — bit-identical to the pre-registry path; everything else is
// swept generically, one graph.TwoSplitOnRing + m.Allocate per grid point,
// with sybil's exact semantics: w1_i = W·i/Grid, earliest-maximum best rule,
// partial-on-cancellation prefix results, and the same ratio conventions.
func RingSweep(ctx context.Context, m Mechanism, g *graph.Graph, v int, opts sybil.SweepOptions) (*sybil.SweepResult, error) {
	if rs, ok := m.(RingSweeper); ok {
		return rs.SweepRing(ctx, g, v, opts)
	}
	if opts.Grid <= 0 {
		opts.Grid = 64
	}
	if opts.Start < 0 || opts.Start > opts.Grid {
		return nil, fmt.Errorf("mechanism: start index %d outside [0, %d]", opts.Start, opts.Grid)
	}
	if !g.IsRing() {
		return nil, fmt.Errorf("mechanism: graph is not a ring")
	}
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("mechanism: vertex %d outside [0, %d)", v, g.N())
	}
	ctx, span := obs.Start(ctx, "mechanism.ring_sweep")
	defer span.End()
	if span != nil {
		span.SetAttr("mechanism", m.Name())
		span.SetAttr("grid", strconv.Itoa(opts.Grid))
	}
	honestAlloc, err := m.Allocate(ctx, g)
	if err != nil {
		return nil, fmt.Errorf("mechanism: honest allocation: %w", err)
	}
	honest := honestAlloc.Utility(v)
	W := g.Weight(v)
	total := opts.Grid + 1 - opts.Start
	pts := make([]sybil.SweepPoint, total)
	done := make([]bool, total)
	errs := par.MapCtx(ctx, total, opts.Workers, func(ctx context.Context, k int) error {
		i := opts.Start + k
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fault.Hit(ctx, fault.SiteSweepPoint); err != nil {
			return err
		}
		w1 := W.MulInt(int64(i)).DivInt(int64(opts.Grid))
		u, err := SplitUtility(ctx, m, g, v, w1)
		if err != nil {
			return err
		}
		pts[k] = sybil.SweepPoint{W1: w1, U: u}
		done[k] = true
		if opts.Progress != nil {
			opts.Progress(i)
		}
		return nil
	})
	// Same failure classification as sybil.SweepInstanceCtx: context errors
	// truncate to the completed prefix, anything else fails the call.
	canceled := false
	for k, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = true
			continue
		}
		return nil, fmt.Errorf("mechanism: sweep point %d: %w", opts.Start+k, err)
	}
	completed := total
	if canceled {
		completed = 0
		for completed < total && done[completed] {
			completed++
		}
	}
	res := &sybil.SweepResult{
		Points:    pts[:completed],
		Honest:    honest,
		Partial:   completed < total,
		Start:     opts.Start,
		NextIndex: opts.Start + completed,
	}
	if completed > 0 {
		res.BestW1, res.BestU = res.Points[0].W1, res.Points[0].U
		for i, p := range res.Points[1:] {
			if res.BestU.Less(p.U) {
				res.BestW1, res.BestU, res.BestIndex = p.W1, p.U, i+1
			}
		}
	}
	switch {
	case res.Honest.Sign() > 0:
		res.Ratio = res.BestU.Div(res.Honest)
	case res.BestU.Sign() > 0:
		return nil, fmt.Errorf("mechanism: positive attack utility %v from zero honest utility", res.BestU)
	default:
		res.Ratio = numeric.One
	}
	return res, nil
}

// SplitUtility evaluates one two-identity split under m: build the split
// path graph with v's weight divided (w1, W−w1) and sum the utilities of
// the two attacker identities. It is the per-point kernel of the generic
// RingSweep, exported so point-at-a-time drivers (the durable sweep job)
// can checkpoint between evaluations.
func SplitUtility(ctx context.Context, m Mechanism, g *graph.Graph, v int, w1 numeric.Rat) (numeric.Rat, error) {
	W := g.Weight(v)
	path, _, v1, v2, err := graph.TwoSplitOnRing(g, v, w1, W.Sub(w1))
	if err != nil {
		return numeric.Zero, err
	}
	a, err := m.Allocate(ctx, path)
	if err != nil {
		return numeric.Zero, err
	}
	return a.Utility(v1).Add(a.Utility(v2)), nil
}

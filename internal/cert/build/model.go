package build

import (
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/numeric"
)

// This file derives the exact closed form of a structure piece's objective
// U(w1) = Num(w1)/Den(w1) — the rational-function model the optimizer uses
// in float64 (core.pieceFormula), rebuilt here in exact arithmetic so the
// certificate can carry it and the checker can re-evaluate it. Within a
// piece only w1 and w2 = W − w1 vary; each identity's utility is a Möbius
// function of its own weight with constants read off the pair containing
// it, and the two identities combine by polynomial fraction addition.

// poly is a polynomial in w1 with ascending exact coefficients.
type poly []numeric.Rat

func polyAdd(a, b poly) poly {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(poly, len(a))
	copy(out, a)
	for i, c := range b {
		out[i] = out[i].Add(c)
	}
	return out
}

func polyMul(a, b poly) poly {
	out := make(poly, len(a)+len(b)-1)
	for i := range out {
		out[i] = numeric.Zero
	}
	for i, ca := range a {
		if ca.IsZero() {
			continue
		}
		for j, cb := range b {
			out[i+j] = out[i+j].Add(ca.Mul(cb))
		}
	}
	return out
}

// polyTrim drops trailing zero coefficients, keeping at least one.
func polyTrim(p poly) poly {
	n := len(p)
	for n > 1 && p[n-1].IsZero() {
		n--
	}
	return p[:n]
}

// polyEval evaluates p at x by Horner's rule.
func polyEval(p poly, x numeric.Rat) numeric.Rat {
	acc := numeric.Zero
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p[i])
	}
	return acc
}

// ratFunc is a rational function Num(w1)/Den(w1).
type ratFunc struct{ num, den poly }

func (r ratFunc) add(o ratFunc) ratFunc {
	return ratFunc{
		num: polyAdd(polyMul(r.num, o.den), polyMul(o.num, r.den)),
		den: polyMul(r.den, o.den),
	}
}

// exactAt checks Num(w1)/Den(w1) == want and, on success, returns the
// trimmed canonical coefficient strings within the certificate's degree
// caps (numerator ≤ cubic, denominator ≤ quadratic). A pole at w1, a value
// mismatch (the midpoint structure did not extend to w1 — brackets hold
// breakpoint dust) or an out-of-cap degree all return ok = false: the piece
// is then certified by its exact best evaluation alone.
func (r ratFunc) exactAt(w1, want numeric.Rat) (num, den []string, ok bool) {
	dv := polyEval(r.den, w1)
	if dv.IsZero() {
		return nil, nil, false
	}
	if !polyEval(r.num, w1).Equal(want.Mul(dv)) {
		return nil, nil, false
	}
	tn, td := polyTrim(r.num), polyTrim(r.den)
	if len(tn) > 4 || len(td) > 3 {
		return nil, nil, false
	}
	num = make([]string, len(tn))
	for i, c := range tn {
		num[i] = c.String()
	}
	den = make([]string, len(td))
	for i, c := range td {
		den[i] = c.String()
	}
	return num, den, true
}

// pieceModel builds the exact closed form of the piece containing ev (the
// piece's midpoint evaluation) on a ring with attacker weight W. It mirrors
// core's float pieceFormula case for case; ok is false only when the model
// degenerates (a zero constant denominator on an all-constant case).
func pieceModel(ev *core.PathEval, W numeric.Rat) (ratFunc, bool) {
	i1, i2 := ev.Dec.PairIndexOf(ev.V1), ev.Dec.PairIndexOf(ev.V2)
	c1, c2 := ev.Dec.ClassOf(ev.V1), ev.Dec.ClassOf(ev.V2)
	neg1 := numeric.FromInt(-1)

	pairW := func(idx int) (wB, wC numeric.Rat) {
		pair := ev.Dec.Pairs[idx]
		wB, wC = numeric.Zero, numeric.Zero
		for _, u := range pair.B {
			wB = wB.Add(ev.Path.Weight(u))
		}
		for _, u := range pair.C {
			wC = wC.Add(ev.Path.Weight(u))
		}
		return wB, wC
	}

	if i1 == i2 {
		wB, wC := pairW(i1)
		w1m, w2m := ev.W1, ev.W2
		w1p := poly{numeric.Zero, numeric.One} // w1
		w2p := poly{W, neg1}                   // W − w1
		switch {
		case c1 == bottleneck.ClassBoth && c2 == bottleneck.ClassBoth:
			return ratFunc{num: poly{W}, den: poly{numeric.One}}, true
		case c1.IsC() && c2.IsC():
			// α = (w(C∖{v¹,v²}) + W)/w(B) is constant: U = W·w(B)/(kc + W).
			d := wC.Sub(w1m).Sub(w2m).Add(W)
			if d.IsZero() {
				return ratFunc{}, false
			}
			return ratFunc{num: poly{W.Mul(wB)}, den: poly{d}}, true
		case c1.IsB() && c2.IsB():
			d := wB.Sub(w1m).Sub(w2m).Add(W)
			if d.IsZero() {
				return ratFunc{}, false
			}
			return ratFunc{num: poly{W.Mul(wC)}, den: poly{d}}, true
		case c1.IsB() && c2.IsC():
			// α(w1) = (kc + W − w1)/(kb + w1); U = w1·α + (W − w1)/α.
			kb, kc := wB.Sub(w1m), wC.Sub(w2m)
			a := poly{kc.Add(W), neg1}
			b := poly{kb, numeric.One}
			num := polyAdd(polyMul(w1p, polyMul(a, a)), polyMul(w2p, polyMul(b, b)))
			return ratFunc{num: num, den: polyMul(a, b)}, true
		default: // c1 C, c2 B
			kc, kb := wC.Sub(w1m), wB.Sub(w2m)
			a := poly{kc, numeric.One}
			b := poly{kb.Add(W), neg1}
			num := polyAdd(polyMul(w1p, polyMul(b, b)), polyMul(w2p, polyMul(a, a)))
			return ratFunc{num: num, den: polyMul(a, b)}, true
		}
	}

	// Distinct pairs: each identity is an independent Möbius function of
	// its own weight, u(w) = w·P/(q + w); identity 2's weight is W − w1.
	single := func(idx int, cls bottleneck.Class, wm numeric.Rat, atW2 bool) ratFunc {
		if cls == bottleneck.ClassBoth {
			if atW2 {
				return ratFunc{num: poly{W, neg1}, den: poly{numeric.One}}
			}
			return ratFunc{num: poly{numeric.Zero, numeric.One}, den: poly{numeric.One}}
		}
		wB, wC := pairW(idx)
		var p, q numeric.Rat
		if cls.IsC() {
			p, q = wB, wC.Sub(wm)
		} else {
			p, q = wC, wB.Sub(wm)
		}
		if atW2 {
			// (W − w1)·P / (q + W − w1)
			return ratFunc{num: poly{W.Mul(p), p.Mul(neg1)}, den: poly{q.Add(W), neg1}}
		}
		return ratFunc{num: poly{numeric.Zero, p}, den: poly{q, numeric.One}}
	}
	u1 := single(i1, c1, ev.W1, false)
	u2 := single(i2, c2, ev.W2, true)
	return u1.add(u2), true
}

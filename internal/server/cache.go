package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mechanism"
)

// instanceCache is the size-bounded LRU keyed by CanonicalKey. An entry
// carries everything the service ever derives from one graph: the
// decomposition per engine, the BD allocation, and one core.Instance per
// manipulative agent — so repeated requests reuse not just answers but the
// accumulated SplitSolver state (interior transfers, warm hints, residual
// tails) and the per-instance (w1, w2) evaluation cache.
//
// Eviction is by entry (graph) count. A zero-capacity cache degenerates to
// a pass-through: every lookup misses and nothing is retained, which the
// differential tests use to prove answers do not depend on cache state.
type instanceCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses, evictions atomic.Int64
}

// cacheEntry is the cached derived state of one canonical instance.
// Fields are computed lazily under the entry lock; every stored value is
// immutable once published (or internally synchronized, as core.Instance
// is), so concurrent requests can share freely.
type cacheEntry struct {
	key string
	g   *graph.Graph

	mu        sync.Mutex
	decs      map[bottleneck.Engine]*bottleneck.Decomposition
	alloc     *allocation.Allocation
	instances map[int]*core.Instance
}

func newInstanceCache(capacity int) *instanceCache {
	return &instanceCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// entryFor returns the cached entry for key, creating (and, capacity
// permitting, retaining) it on miss; hit reports whether the entry was
// already resident. g is used only on miss; the hit path returns the
// resident entry so all requests for one instance converge on the same
// solver state regardless of how their graphs were spelled.
func (c *instanceCache) entryFor(key string, g *graph.Graph) (entry *cacheEntry, hit bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return &cacheEntry{key: key, g: g}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry), true
	}
	c.misses.Add(1)
	e := &cacheEntry{key: key, g: g}
	c.byKey[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	return e, false
}

// len returns the resident entry count.
func (c *instanceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// decomposition returns the entry's decomposition under engine, computing
// it on first use. The entry lock is not held during the solve, so a slow
// decomposition never blocks unrelated lookups; concurrent first requests
// may duplicate work, in which case the first published result wins (the
// results are identical — the engines are exact).
func (e *cacheEntry) decomposition(ctx context.Context, engine bottleneck.Engine) (*bottleneck.Decomposition, error) {
	e.mu.Lock()
	if e.decs != nil {
		if d, ok := e.decs[engine]; ok {
			e.mu.Unlock()
			return d, nil
		}
	}
	e.mu.Unlock()
	d, err := bottleneck.DecomposeCtx(ctx, e.g, engine)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.decs == nil {
		e.decs = make(map[bottleneck.Engine]*bottleneck.Decomposition)
	}
	if prev, ok := e.decs[engine]; ok {
		return prev, nil
	}
	e.decs[engine] = d
	return d, nil
}

// allocation returns the entry's BD allocation, computing decomposition
// and allocation on first use (always under the auto engine: the
// allocation depends only on the decomposition, which is engine-invariant).
func (e *cacheEntry) allocation(ctx context.Context, engine bottleneck.Engine) (*allocation.Allocation, error) {
	e.mu.Lock()
	a := e.alloc
	e.mu.Unlock()
	if a != nil {
		return a, nil
	}
	d, err := e.decomposition(ctx, engine)
	if err != nil {
		return nil, err
	}
	a, err = allocation.Compute(e.g, d)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.alloc == nil {
		e.alloc = a
	}
	return e.alloc, nil
}

// mechAllocation returns the entry's allocation under mechanism m. For
// decomposition-based backends (bd) it is the classic decompose-then-compute
// path — engine selection honored, decompositions shared with /v1/decompose
// — bit-identical to the pre-mechanism handler. Any other backend allocates
// directly. The one alloc slot per entry stays unambiguous because entry
// keys are mechanism-scoped (mechKey): a non-bd mechanism never resolves to
// a bd entry or vice versa.
func (e *cacheEntry) mechAllocation(ctx context.Context, m mechanism.Mechanism, engine bottleneck.Engine) (*allocation.Allocation, error) {
	if _, ok := m.(mechanism.Decomposer); ok {
		return e.allocation(ctx, engine)
	}
	e.mu.Lock()
	a := e.alloc
	e.mu.Unlock()
	if a != nil {
		return a, nil
	}
	a, err := m.Allocate(ctx, e.g)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.alloc == nil {
		e.alloc = a
	}
	return e.alloc, nil
}

// instance returns the entry's core.Instance for agent v, constructing it
// on first use. The construction decomposes the ring, so it runs outside
// the entry lock like the other getters; ctx carries cancellation and any
// obs span into the honest-baseline decomposition.
func (e *cacheEntry) instance(ctx context.Context, v int) (*core.Instance, error) {
	if v < 0 || v >= e.g.N() {
		return nil, fmt.Errorf("agent %d out of range [0, %d)", v, e.g.N())
	}
	e.mu.Lock()
	if in, ok := e.instances[v]; ok {
		e.mu.Unlock()
		return in, nil
	}
	e.mu.Unlock()
	in, err := core.NewInstanceCtx(ctx, e.g, v)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.instances == nil {
		e.instances = make(map[int]*core.Instance)
	}
	if prev, ok := e.instances[v]; ok {
		return prev, nil
	}
	e.instances[v] = in
	return in, nil
}

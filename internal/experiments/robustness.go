package experiments

import (
	"fmt"
	"math"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/p2p"
)

// E15AsyncRobustness is an extension experiment beyond the paper's text,
// motivated by its Section I framing (BitTorrent's incentives "build
// robustness"): the proportional response protocol under message latency,
// loss, and peer churn. The asynchronous swarm keeps each peer's last heard
// offer and must still settle at the same BD equilibrium.
func E15AsyncRobustness(rounds int) (*Table, error) {
	if rounds <= 0 {
		rounds = 30000
	}
	g := graph.Ring(numeric.Ints(10, 20, 30, 40, 50))
	dec, err := bottleneck.Decompose(g)
	if err != nil {
		return nil, err
	}
	exact := make([]float64, g.N())
	scale := 0.0
	for v := 0; v < g.N(); v++ {
		exact[v] = dec.Utility(g, v).Float64()
		scale += exact[v]
	}
	errOf := func(res *p2p.AsyncResult) float64 {
		worst := 0.0
		for v := 0; v < g.N(); v++ {
			if e := math.Abs(res.Utilities[v] - exact[v]); e > worst {
				worst = e
			}
		}
		return worst
	}
	t := NewTable("E15 / extension — protocol robustness under delay, loss, and churn",
		"max delay", "drop rate", "churn rate", "offline events", "L-inf error", "rel error")
	configs := []p2p.AsyncConfig{
		{Rounds: rounds, MaxDelay: 1},
		{Rounds: rounds, MaxDelay: 4, Seed: 11},
		{Rounds: rounds, MaxDelay: 8, Seed: 11},
		{Rounds: rounds, MaxDelay: 2, DropRate: 0.1, Seed: 13},
		{Rounds: rounds, MaxDelay: 2, DropRate: 0.3, Seed: 13},
		{Rounds: rounds, MaxDelay: 2, DropRate: 0.1, ChurnRate: 0.0005, OfflineRounds: 20, Seed: 17},
	}
	for _, cfg := range configs {
		res, err := p2p.RunAsync(g, cfg)
		if err != nil {
			return t, fmt.Errorf("E15: %w", err)
		}
		e := errOf(res)
		rel := e / scale
		t.Add(cfg.MaxDelay, fmtF(cfg.DropRate), fmtF(cfg.ChurnRate), res.OfflineEvents,
			fmt.Sprintf("%.3e", e), fmt.Sprintf("%.3e", rel))
		if cfg.ChurnRate == 0 && rel > 1e-3 {
			return t, fmt.Errorf("E15: delay/loss config %+v failed to converge (rel err %v)", cfg, rel)
		}
		if rel > 0.05 {
			return t, fmt.Errorf("E15: config %+v drifted far from equilibrium (rel err %v)", cfg, rel)
		}
	}
	t.Note("latency and loss leave the equilibrium intact; churn perturbs it transiently but the protocol re-settles")
	return t, nil
}

// In-process cluster tests: three real irshared backends behind one Router,
// exercised through the public retrying client. The acceptance contract of
// the cluster subsystem lives here — hard-stopping a node mid-job re-places
// the job on a survivor from its last checkpoint with a bit-identical final
// result, and a backend answering with a corrupted certificate is
// quarantined while the request still succeeds via failover.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/cert"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/server"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testNode is one in-process backend: a real server.Server behind a real
// HTTP listener, so the router exercises genuine transport failures when
// the node is hard-stopped.
type testNode struct {
	srv  *server.Server
	ts   *httptest.Server
	url  string
	once sync.Once
}

func startNode(t *testing.T, id string, cfg server.Config) *testNode {
	t.Helper()
	cfg.NodeID = id
	cfg.Logger = discardLogger()
	if cfg.MaxQueueDepth == 0 {
		cfg.MaxQueueDepth = -1
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("start node %s: %v", id, err)
	}
	ts := httptest.NewServer(srv.Handler())
	n := &testNode{srv: srv, ts: ts, url: ts.URL}
	t.Cleanup(n.stop)
	return n
}

// stop hard-stops the node: live connections are severed first, so in-flight
// proxied requests fail at the transport level exactly like a SIGKILL'd
// process, then the server's goroutines are drained in the background.
func (n *testNode) stop() {
	n.once.Do(func() {
		n.ts.CloseClientConnections()
		n.ts.Close()
		go n.srv.Close()
	})
}

// startRouter boots a Router with test-speed timings over the given nodes.
func startRouter(t *testing.T, cfg Config, nodes ...string) (*Router, *httptest.Server) {
	t.Helper()
	cfg.Nodes = nodes
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 2
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 500 * time.Millisecond
	}
	if cfg.RenewInterval == 0 {
		cfg.RenewInterval = 50 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return r, ts
}

func routerClient(url string) *client.Client {
	return client.New(url, client.WithMaxAttempts(30),
		client.WithBackoff(2*time.Millisecond, 20*time.Millisecond))
}

// TestClusterKillRecoverBitIdentical is the headline acceptance test: a
// sweep job submitted through the router, its owning node hard-stopped
// mid-run, the job re-placed on a survivor seeded from the router's lease
// checkpoint — and the final result byte-identical to the same job run
// uninterrupted on a single node.
func TestClusterKillRecoverBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill/recover is slow")
	}
	// Slow every checkpoint write so the kill lands mid-sweep, not after a
	// sprint to done. Latency injection never alters results.
	slowWAL := func() *fault.Injector {
		inj, err := fault.New(1, fault.Rule{
			Site: fault.SiteJobsWAL, Kind: fault.KindLatency,
			Every: 1, Latency: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	nodes := make([]*testNode, 3)
	urls := make([]string, 3)
	for i := range nodes {
		nodes[i] = startNode(t, fmt.Sprintf("n%d", i+1),
			server.Config{DataDir: t.TempDir(), Chaos: slowWAL()})
		urls[i] = nodes[i].url
	}
	r, rts := startRouter(t, Config{}, urls...)
	rc := routerClient(rts.URL)
	ctx := context.Background()

	req := &client.JobSubmitRequest{
		Graph: client.Graph{Ring: []string{"1", "3/2", "2", "5", "7/3", "4"}},
		V:     1, Grid: 192,
	}
	sub, err := rc.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatalf("submit through router: %v", err)
	}
	id := sub.Job.ID

	// Wait until the router's lease has observed real progress: the re-placed
	// job must resume from a nonzero checkpoint for the test to mean anything.
	var owner string
	var observed int
	deadline := time.Now().Add(15 * time.Second)
	for owner == "" {
		if time.Now().After(deadline) {
			t.Fatalf("lease never observed progress; leases: %+v", r.Leases())
		}
		if ls, ok := r.leases.get(id); ok && len(ls.Points) >= 3 {
			owner, observed = ls.Node, len(ls.Points)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var victim *testNode
	for _, n := range nodes {
		if n.url == owner {
			victim = n
		}
	}
	if victim == nil {
		t.Fatalf("lease owner %q is not a known node", owner)
	}
	victim.stop()
	t.Logf("killed owner %s with %d points checkpointed", owner, observed)

	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	final, err := rc.WaitJob(waitCtx, id)
	if err != nil {
		t.Fatalf("wait through router after kill: %v", err)
	}
	if final.State != client.JobDone {
		t.Fatalf("job settled as %q (error %q)", final.State, final.Error)
	}
	if got := r.leaseReplaced.Load(); got < 1 {
		t.Fatalf("lease_replacements_total = %d, want >= 1", got)
	}

	// Bit-identical to an uninterrupted single-node run of the same job.
	solo := startNode(t, "solo", server.Config{DataDir: t.TempDir()})
	sc := routerClient(solo.url)
	soloSub, err := sc.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	soloFinal, err := sc.WaitJob(ctx, soloSub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if soloFinal.State != client.JobDone {
		t.Fatalf("solo job settled as %q", soloFinal.State)
	}
	if string(final.Result) != string(soloFinal.Result) {
		t.Fatalf("re-placed result diverged from single-node run:\ngot:  %s\nwant: %s",
			final.Result, soloFinal.Result)
	}

	// The lease is retired once the job is done; the supervision loop may
	// need one more pass to notice.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, ok := r.leases.get(id); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("done job's lease never retired: %+v", r.Leases())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tamperNode wraps a real backend and corrupts the certificate inside every
// /v1/ratio answer — a byzantine node that computes fine but lies about its
// proof. The router must catch it with cert.Check, quarantine it, and serve
// the request from a replica.
func tamperNode(t *testing.T, inner *testNode) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := httptest.NewRecorder()
		inner.srv.Handler().ServeHTTP(rec, req)
		body := rec.Body.Bytes()
		if req.URL.Path == "/v1/ratio" && rec.Code == http.StatusOK {
			var m map[string]any
			if err := json.Unmarshal(body, &m); err == nil {
				if c, ok := m["certificate"].(map[string]any); ok {
					c["ratio"] = "7919/13" // a claim no witness supports
					if mutated, err := json.Marshal(m); err == nil {
						body = mutated
					}
				}
			}
		}
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			w.Header()[k] = vs
		}
		w.WriteHeader(rec.Code)
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestCertRejectionQuarantinesAndFailsOver: a request placed on a backend
// whose certificate fails the router's solver-free check is transparently
// retried on the next replica, the lying node lands in quarantine, and the
// rejection counter records the event.
func TestCertRejectionQuarantinesAndFailsOver(t *testing.T) {
	honest1 := startNode(t, "h1", server.Config{})
	honest2 := startNode(t, "h2", server.Config{})
	evil := tamperNode(t, startNode(t, "evil", server.Config{}))

	r, rts := startRouter(t, Config{QuarantineFor: time.Hour},
		honest1.url, honest2.url, evil.URL)

	// Find a ring whose placement key lands on the tamper node first.
	var req *client.RatioRequest
	var key string
	for i := 0; i < 256 && req == nil; i++ {
		wg := client.Graph{Ring: []string{"1", "2", strconv.Itoa(3 + i)}}
		k, err := server.PlacementKey(&wg, "")
		if err != nil {
			t.Fatal(err)
		}
		if r.ring.sequence(k)[0] == evil.URL {
			req = &client.RatioRequest{Graph: wg, V: 1, Grid: 8, Cert: true}
			key = k
		}
	}
	if req == nil {
		t.Fatal("no ring placed on the tamper node in 256 tries")
	}

	rc := client.New(rts.URL)
	resp, err := rc.Ratio(context.Background(), req)
	if err != nil {
		t.Fatalf("ratio through router with a lying primary: %v", err)
	}
	if resp.Certificate == nil {
		t.Fatal("answer carries no certificate")
	}
	if err := cert.Check(resp.Certificate); err != nil {
		t.Fatalf("forwarded certificate does not verify: %v", err)
	}
	if got := r.certRejections.Load(); got != 1 {
		t.Fatalf("cert_rejections_total = %d, want 1", got)
	}
	if got := r.failovers.Load(); got < 1 {
		t.Fatalf("failovers_total = %d, want >= 1", got)
	}
	quarantined := false
	for _, m := range r.Members() {
		if m.URL == evil.URL {
			quarantined = m.State == StateQuarantined
		}
	}
	if !quarantined {
		t.Fatalf("tamper node not quarantined: %+v", r.Members())
	}
	// Placement now routes around the quarantined node entirely.
	for _, n := range r.aliveSequence(key) {
		if n == evil.URL {
			t.Fatal("quarantined node still in the alive sequence")
		}
	}
	// And the same request keeps succeeding without touching it.
	before := r.certRejections.Load()
	if _, err := rc.Ratio(context.Background(), req); err != nil {
		t.Fatalf("ratio after quarantine: %v", err)
	}
	if r.certRejections.Load() != before {
		t.Fatal("quarantined node was asked again")
	}
}

// TestRouterReadyzAndMetrics: the router's own health flips to 503 when the
// last backend dies, and /metrics exposes the counters the ops story
// depends on.
func TestRouterReadyzAndMetrics(t *testing.T) {
	n := startNode(t, "only", server.Config{})
	_, rts := startRouter(t, Config{ProbeInterval: 10 * time.Millisecond, DeadAfter: 1}, n.url)

	rc := client.New(rts.URL)
	if _, err := rc.Ratio(context.Background(), &client.RatioRequest{
		Graph: client.Graph{Ring: []string{"1", "2", "3"}}, V: 0, Grid: 4,
	}); err != nil {
		t.Fatalf("proxied ratio: %v", err)
	}

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		`irrouter_requests_total{endpoint="/v1/ratio",status="200"} 1`,
		`irrouter_node_state{node="` + n.url + `",state="alive"} 1`,
		"irrouter_probes_total",
		"irrouter_leases_active 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	n.stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(rts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router still ready with its only backend dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// wireOf renders a graph in explicit wire form (same helper as the client's
// differential corpus).
func wireOf(g *graph.Graph) client.Graph {
	ws := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		ws[v] = g.Weight(v).String()
	}
	return client.Graph{N: g.N(), Weights: ws, Edges: g.Edges()}
}

// TestClusterChaosReplay routes the 100-instance differential corpus through
// the router with faults armed at the two cluster sites — cluster.probe
// (membership flapping: nodes declared dead and resurrected while traffic
// flows) and cluster.lease (lease-log writes failing under grant and
// renewal) — plus a durable-jobs leg. The contract matches the client-side
// chaos replay: every request converges through the retrying client and
// every answer is bit-identical to a fault-free single node.
func TestClusterChaosReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	injector, err := fault.New(20260808,
		fault.Rule{Site: fault.SiteClusterProbe, Kind: fault.KindError, Every: 3, Limit: 80},
		fault.Rule{Site: fault.SiteClusterLease, Kind: fault.KindError, Every: 4, Limit: 12},
		fault.Rule{Site: fault.SiteClusterLease, Kind: fault.KindLatency, Every: 7, Latency: 200 * time.Microsecond, Limit: 50},
	)
	if err != nil {
		t.Fatal(err)
	}

	urls := make([]string, 3)
	for i := range urls {
		urls[i] = startNode(t, fmt.Sprintf("c%d", i+1), server.Config{DataDir: t.TempDir()}).url
	}
	_, rts := startRouter(t, Config{Chaos: injector, DataDir: t.TempDir()}, urls...)

	clean := startNode(t, "clean", server.Config{DataDir: t.TempDir()})
	cc := client.New(clean.url, client.WithSeed(1))
	fc := routerClient(rts.URL)
	ctx := context.Background()

	rng := rand.New(rand.NewSource(20260805))
	dists := []graph.WeightDist{graph.DistUniform, graph.DistSkewed, graph.DistPowers, graph.DistUnit}
	const instances = 100
	jobsDriven := 0
	for i := 0; i < instances; i++ {
		n := 3 + rng.Intn(6)
		dist := dists[i%len(dists)]
		var g *graph.Graph
		isRing := false
		switch i % 3 {
		case 0:
			g = graph.RandomRing(rng, n, dist)
			isRing = true
		case 1:
			g = graph.Path(graph.RandomWeights(rng, n, dist))
		default:
			g = graph.RandomTree(rng, n, dist)
		}
		wg := wireOf(g)

		wantU, err := cc.Utilities(ctx, &client.UtilitiesRequest{Graph: wg})
		if err != nil {
			t.Fatalf("instance %d: clean utilities: %v", i, err)
		}
		gotU, err := fc.Utilities(ctx, &client.UtilitiesRequest{Graph: wg})
		if err != nil {
			t.Fatalf("instance %d: routed utilities did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotU, wantU) {
			t.Fatalf("instance %d: utilities diverged through the router:\ngot:  %+v\nwant: %+v", i, gotU, wantU)
		}

		if !isRing {
			continue
		}
		v := rng.Intn(n)
		const grid = 8
		wantR, err := cc.Ratio(ctx, &client.RatioRequest{Graph: wg, V: v, Grid: grid})
		if err != nil {
			t.Fatalf("instance %d: clean ratio: %v", i, err)
		}
		gotR, err := fc.Ratio(ctx, &client.RatioRequest{Graph: wg, V: v, Grid: grid})
		if err != nil {
			t.Fatalf("instance %d: routed ratio did not converge: %v", i, err)
		}
		if !reflect.DeepEqual(gotR, wantR) {
			t.Fatalf("instance %d: ratio diverged through the router:\ngot:  %+v\nwant: %+v", i, gotR, wantR)
		}

		// Every 16th ring also runs as a durable job through the router so
		// the lease path (grant through the chaos site, renewal, retirement)
		// sees sustained traffic.
		if i%16 != 0 {
			continue
		}
		jobsDriven++
		sub, err := fc.SubmitSweep(ctx, &client.JobSubmitRequest{Graph: wg, V: v, Grid: 16})
		if err != nil {
			t.Fatalf("instance %d: routed job submit did not converge: %v", i, err)
		}
		job, err := fc.WaitJob(ctx, sub.Job.ID)
		if err != nil {
			t.Fatalf("instance %d: routed job wait: %v", i, err)
		}
		if job.State != client.JobDone {
			t.Fatalf("instance %d: routed job settled as %q (error %q)", i, job.State, job.Error)
		}
		var got client.SweepResponse
		if err := json.Unmarshal(job.Result, &got); err != nil {
			t.Fatalf("instance %d: routed job result: %v", i, err)
		}
		want, err := cc.Sweep(ctx, &client.SweepRequest{Graph: wg, V: v, Grid: 16})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&got, want) {
			t.Fatalf("instance %d: job result diverged through the router:\ngot:  %+v\nwant: %+v", i, got, want)
		}
	}
	if jobsDriven == 0 {
		t.Fatal("corpus drove no jobs; the lease leg is vacuous")
	}

	// Both cluster sites must actually have fired, or this replay proves
	// nothing about the router's fault handling.
	stats := injector.Stats()
	for _, site := range []string{fault.SiteClusterProbe, fault.SiteClusterLease} {
		st := stats[site]
		if st.Hits == 0 || st.Injected == 0 {
			t.Fatalf("site %s: hits=%d injected=%d — chaos leg is vacuous", site, st.Hits, st.Injected)
		}
	}
}

// TestClusterJobListView exercises the cluster-wide GET /v1/jobs: jobs
// owned by different nodes merge into one deduped view, the state/kind
// filters and the post-merge limit apply, and per-node cursors are
// rejected rather than silently mis-paginated.
func TestClusterJobListView(t *testing.T) {
	nodes := make([]*testNode, 3)
	urls := make([]string, 3)
	for i := range nodes {
		nodes[i] = startNode(t, fmt.Sprintf("n%d", i+1), server.Config{DataDir: t.TempDir()})
		urls[i] = nodes[i].url
	}
	_, rts := startRouter(t, Config{}, urls...)
	rc := routerClient(rts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sweep, err := rc.SubmitSweep(ctx, &client.JobSubmitRequest{
		Graph: client.Graph{Ring: []string{"1", "2", "3", "4", "5"}}, V: 2, Grid: 8,
	})
	if err != nil {
		t.Fatalf("submit sweep: %v", err)
	}
	scen, err := rc.SubmitScenario(ctx, &client.ScenarioRequest{
		Kind: "ksybil", Graph: client.Graph{Ring: []string{"3", "1", "4", "1", "5"}}, V: 0, K: 3, Grid: 5,
	})
	if err != nil {
		t.Fatalf("submit scenario: %v", err)
	}
	for _, id := range []string{sweep.Job.ID, scen.Job.ID} {
		if job, err := rc.WaitJob(ctx, id); err != nil || job.State != client.JobDone {
			t.Fatalf("job %s: %v (state %v)", id, err, job)
		}
	}

	list, err := rc.ListJobs(ctx, client.JobListQuery{})
	if err != nil {
		t.Fatalf("cluster list: %v", err)
	}
	seen := map[string]int{}
	for _, j := range list.Jobs {
		seen[j.ID]++
	}
	if len(list.Jobs) != 2 || seen[sweep.Job.ID] != 1 || seen[scen.Job.ID] != 1 {
		t.Fatalf("merged view wrong: %+v", list.Jobs)
	}

	byKind, err := rc.ListJobs(ctx, client.JobListQuery{Kind: "ksybil"})
	if err != nil {
		t.Fatalf("kind filter: %v", err)
	}
	if len(byKind.Jobs) != 1 || byKind.Jobs[0].ID != scen.Job.ID {
		t.Fatalf("kind filter answered %+v", byKind.Jobs)
	}
	byState, err := rc.ListJobs(ctx, client.JobListQuery{State: client.JobDone})
	if err != nil {
		t.Fatalf("state filter: %v", err)
	}
	if len(byState.Jobs) != 2 {
		t.Fatalf("state filter answered %+v", byState.Jobs)
	}
	limited, err := rc.ListJobs(ctx, client.JobListQuery{Limit: 1})
	if err != nil {
		t.Fatalf("limit: %v", err)
	}
	if len(limited.Jobs) != 1 {
		t.Fatalf("limit answered %d jobs", len(limited.Jobs))
	}

	var apiErr *client.APIError
	if _, err := rc.ListJobs(ctx, client.JobListQuery{Cursor: 7}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("cursor must be rejected cluster-wide, got %v", err)
	}
	if _, err := rc.ListJobs(ctx, client.JobListQuery{Kind: "quantum"}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown kind must be rejected, got %v", err)
	}
}

func TestClusterScenarioProxy(t *testing.T) {
	nodes := make([]*testNode, 2)
	urls := make([]string, 2)
	for i := range nodes {
		nodes[i] = startNode(t, fmt.Sprintf("n%d", i+1), server.Config{})
		urls[i] = nodes[i].url
	}
	_, rts := startRouter(t, Config{}, urls...)
	rc := routerClient(rts.URL)
	direct := routerClient(urls[0])
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// ksybil carries a graph, so placement is keyed; the routed answer must
	// match a direct backend call bit-for-bit (exact arithmetic throughout).
	req := &client.ScenarioRequest{
		Kind: "ksybil", Graph: client.Graph{Ring: []string{"3", "1", "2", "1", "5"}}, V: 0, K: 3, Grid: 6,
	}
	routed, err := rc.Scenario(ctx, req)
	if err != nil {
		t.Fatalf("routed scenario: %v", err)
	}
	want, err := direct.Scenario(ctx, req)
	if err != nil {
		t.Fatalf("direct scenario: %v", err)
	}
	if !reflect.DeepEqual(routed, want) {
		t.Fatalf("routed scenario diverged:\nrouted: %+v\ndirect: %+v", routed, want)
	}

	// topology has no graph: placement degrades to the endpoint spread but
	// the scan must still route and answer.
	topo, err := rc.Scenario(ctx, &client.ScenarioRequest{
		Kind: "topology", Families: []string{"ring", "tree"}, Count: 1, N: 5, Grid: 3, Seed: 7,
	})
	if err != nil {
		t.Fatalf("routed topology scenario: %v", err)
	}
	if topo.Topology == nil || topo.Topology.Total != 2 {
		t.Fatalf("routed topology answered %+v", topo)
	}

	// Backend validation errors pass through with their stable code.
	var apiErr *client.APIError
	if _, err := rc.Scenario(ctx, &client.ScenarioRequest{
		Kind: "ksybil", Graph: client.Graph{Ring: []string{"1", "2", "3"}}, V: 0, K: 99, Grid: 4,
	}); !errors.As(err, &apiErr) || apiErr.Code != "scenario_limit" {
		t.Fatalf("scenario_limit must pass through the router, got %v", err)
	}
}

// Coalition attacks: Theorem 8 caps what ONE agent can gain from a Sybil
// attack at 2×. This example demonstrates — with exactly evaluated
// strategies — that the bound is strictly unilateral: two coordinating
// attackers can push their combined harvest past 4× the honest total, and
// a sacrificial partner can lift a single agent far beyond 2×.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/sybil"
)

func main() {
	// The certified instance found by grid search (experiment E16).
	g := repro.Ring(repro.Ints(128, 2, 128, 128, 512, 4, 32))
	a, b := 5, 4 // the colluders: a light agent (w=4) and its heavy neighbor (w=512)

	// Unilateral ratios first: both are within Theorem 8's bound of 2.
	for _, v := range []int{a, b} {
		r, err := repro.IncentiveRatio(context.Background(), g, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unilateral ζ_%d = %.6f (≤ 2 per Theorem 8)\n", v, r.Float64())
	}

	// Joint search: each attacker stays whole or splits toward a neighbor.
	res, err := sybil.PairAttack(g, a, b, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoalition {%d, %d} over %d joint strategies:\n", a, b, res.Tried)
	fmt.Printf("  honest utilities: U_%d = %v, U_%d = %v (total %.4f)\n",
		a, res.HonestA, b, res.HonestB, res.HonestA.Add(res.HonestB).Float64())
	fmt.Printf("  best combined:    %v + %v = %.4f\n",
		res.CombinedA, res.CombinedB, res.BestCombined.Float64())
	fmt.Printf("  combined ratio:   %v ≈ %.4f  — far beyond 2\n",
		res.CombinedRatio, res.CombinedRatio.Float64())
	fmt.Printf("  individual externality: agent %d reaches %.2f× its honest utility\n",
		a, res.RatioA.Float64())
	fmt.Println("\nmechanism: the heavy partner dumps its endowment toward the light")
	fmt.Println("agent's side of the ring; the light agent's identity harvests it.")
	fmt.Println("Every number above is an exactly evaluated strategy — a rigorous")
	fmt.Println("lower-bound certificate that Theorem 8 does not extend to coalitions.")
}

package bottleneck

import (
	"context"

	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/numeric"
)

// flowOracle solves the λ-subproblem by max-flow min-cut on the standard
// parametric network (DESIGN.md §3.1):
//
//	source → L(v) with capacity λ·w_v        (pay to exclude v from S)
//	R(u)   → sink with capacity w_u          (pay if u ∈ Γ(S))
//	L(v)   → R(u) with capacity ∞ for u ∈ Γ(v)
//
// A finite cut keeps a set A of L-vertices on the source side and must then
// cut the sink arcs of all R(u), u ∈ Γ(A), so
// mincut = λ·w(V) + min_A [w(Γ(A)) − λ·w(A)]. The maximal source side of
// the min cut restricted to L-vertices is the maximal minimizer.
type flowOracle struct {
	g    *graph.Graph
	algo maxflow.Algorithm
	// ctx carries the obs span of the enclosing decomposition stage, if
	// any, so each max-flow solve is recorded as a child span. The oracle
	// interface is ctx-free (Dinkelbach checks cancellation between
	// iterations itself), hence the stored context.
	ctx context.Context
}

func (o flowOracle) solveCtx() context.Context {
	if o.ctx != nil {
		return o.ctx
	}
	return context.Background()
}

// solve builds and solves the λ-network, returning the subproblem value and
// the maximal minimizer.
func (o flowOracle) solve(lambda numeric.Rat) (numeric.Rat, []int) {
	n := o.g.N()
	s, t := 2*n, 2*n+1
	nw := maxflow.NewNetwork(2*n+2, s, t)
	for v := 0; v < n; v++ {
		nw.AddEdge(s, v, maxflow.Finite(lambda.Mul(o.g.Weight(v))))
		nw.AddEdge(n+v, t, maxflow.Finite(o.g.Weight(v)))
		for _, u := range o.g.Neighbors(v) {
			nw.AddEdge(v, n+u, maxflow.Inf)
		}
	}
	flowVal := nw.SolveCtx(o.solveCtx(), o.algo)
	val := flowVal.Sub(lambda.Mul(o.g.TotalWeight()))
	side := nw.MinCutSourceSide(true)
	var S []int
	for v := 0; v < n; v++ {
		if side[v] {
			S = append(S, v)
		}
	}
	return val, S
}

func (o flowOracle) value(lambda numeric.Rat) (numeric.Rat, numeric.Rat) {
	val, S := o.solve(lambda)
	return val, o.g.WeightOf(S)
}

func (o flowOracle) maximal(lambda numeric.Rat) []int {
	_, S := o.solve(lambda)
	return S
}

// Sustained-throughput benchmarks, promised by the ROADMAP's raw-speed
// item: concurrent /v1/ratio load driven through the public retrying
// client (package client imports the server, so this file lives in the
// external test package). ns/op here is wall time per completed request
// across all concurrent workers — sustained RPS = 1e9 / ns_per_op — and
// each run also reports an explicit "rps" metric, which cmd/benchjson
// records into BENCH_server.json.
package server_test

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// newBenchService boots a real irshared handler with shedding disabled so
// the benchmark measures compute throughput, not 429 retry schedules.
func newBenchService(b *testing.B) *httptest.Server {
	b.Helper()
	srv, err := server.New(server.Config{
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		MaxQueueDepth: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(func() { srv.Close() })
	return ts
}

// benchRings is the request mix: rings of different sizes and weights so
// the mixed benchmark spreads over several cache entries and batch keys.
func benchRings() []client.RatioRequest {
	rings := [][]string{
		{"1", "2", "3", "4", "5"},
		{"7/2", "1", "1/3", "9", "2", "2"},
		{"100", "1", "1", "1", "1", "1", "1", "1"},
		{"3", "1", "2", "1", "5"},
	}
	reqs := make([]client.RatioRequest, len(rings))
	for i, ws := range rings {
		reqs[i] = client.RatioRequest{Graph: client.Graph{Ring: ws}, V: i % len(ws), Grid: 16}
	}
	return reqs
}

func runSustainedRatio(b *testing.B, reqs []client.RatioRequest) {
	ts := newBenchService(b)
	c := client.New(ts.URL,
		client.WithMaxAttempts(8),
		client.WithBackoff(time.Millisecond, 50*time.Millisecond),
		client.WithSeed(7))
	ctx := context.Background()
	// Warm each instance once so every measured request exercises the
	// steady state (resident cache entry, live batch key).
	for i := range reqs {
		if _, err := c.Ratio(ctx, &reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := reqs[int(next.Add(1))%len(reqs)]
			if _, err := c.Ratio(ctx, &req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "rps")
	}
}

// BenchmarkServerSustainedRatioRPS hammers one resident instance from
// GOMAXPROCS client goroutines: the upper bound of /v1/ratio throughput,
// where micro-batching collapses concurrent identical requests into one
// computation.
func BenchmarkServerSustainedRatioRPS(b *testing.B) {
	runSustainedRatio(b, benchRings()[:1])
}

// BenchmarkServerSustainedRatioRPSMixed rotates over four distinct rings,
// so requests spread across cache entries and batch keys — closer to a
// production mix than the single-instance ceiling.
func BenchmarkServerSustainedRatioRPSMixed(b *testing.B) {
	runSustainedRatio(b, benchRings())
}

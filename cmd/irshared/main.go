// Command irshared serves the resource-sharing solvers over HTTP/JSON.
//
// Endpoints (see internal/server):
//
//	POST /v1/decompose  bottleneck decomposition of a graph
//	POST /v1/allocate   BD allocation (directed transfers + utilities)
//	POST /v1/utilities  equilibrium utilities only
//	POST /v1/ratio      incentive ratio of one ring agent (batched)
//	POST /v1/sweep      split-utility curve of one ring agent
//	POST /v1/jobs       submit a durable background sweep job (needs -data-dir)
//	GET  /v1/jobs       list jobs (cursor pagination, ?state= filter)
//	GET  /v1/jobs/{id}  job status, checkpointed partial points, final result
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET  /healthz       liveness
//	GET  /readyz        readiness (429 + Retry-After when the queue is saturated)
//	GET  /metrics       Prometheus text metrics
//	GET  /debug/trace   span tree of a finished request (?id= from X-Trace-Id)
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//
// The process drains gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests run to completion (bounded by -timeout), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "irshared:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("irshared", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		cacheSize    = fs.Int("cache-size", 128, "instance LRU capacity (0 disables caching)")
		pool         = fs.Int("pool", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request computation timeout")
		queueTimeout = fs.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
		batchWindow  = fs.Duration("batch-window", 0, "ratio batch collection window (0 = join-in-flight only)")
		drain        = fs.Duration("drain", 30*time.Second, "max graceful shutdown wait")
		logFormat    = fs.String("log", "text", "log format: text|json")
		traceBuffer  = fs.Int("trace-buffer", 256, "retained request traces for /debug/trace (0 disables tracing)")
		traceKeep    = fs.Duration("trace-retention", 10*time.Minute, "max age of a retained trace")
		traceSpans   = fs.Int("trace-max-spans", 4096, "span cap per trace (excess spans are dropped, not buffered)")
		pprof        = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		maxQueue     = fs.Int("max-queue", 0, "shed load at this many queued requests (0 = 4x pool, -1 disables shedding)")
		chaosSpec    = fs.String("chaos", "", "fault-injection spec, e.g. 'server.compute=error:0.1;maxflow.push=panic:1/50' (requires -chaos-allow)")
		chaosAllow   = fs.Bool("chaos-allow", false, "acknowledge that -chaos deliberately breaks requests; refused otherwise")
		chaosSeed    = fs.Uint64("chaos-seed", 1, "deterministic seed for -chaos injection decisions")
		dataDir      = fs.String("data-dir", "", "durable job store directory; enables the /v1/jobs API and crash recovery")
		nodeID       = fs.String("node-id", "", "stable node identity reported on /healthz and /readyz (default: hostname)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	// The flag uses 0 = disabled (natural for operators); Config uses
	// 0 = default and negative = disabled.
	cfgCache := *cacheSize
	if cfgCache == 0 {
		cfgCache = -1
	}
	cfgTrace := *traceBuffer
	if cfgTrace == 0 {
		cfgTrace = -1
	}

	// Chaos is strictly opt-in twice over: -chaos names the faults, and
	// -chaos-allow acknowledges that a production-looking server is about to
	// fail requests on purpose. One without the other is refused.
	var injector *fault.Injector
	if *chaosSpec != "" {
		if !*chaosAllow {
			return fmt.Errorf("-chaos requires -chaos-allow (fault injection deliberately fails requests)")
		}
		rules, err := fault.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("bad -chaos spec: %w", err)
		}
		injector, err = fault.New(*chaosSeed, rules...)
		if err != nil {
			return fmt.Errorf("bad -chaos spec: %w", err)
		}
		logger.Warn("chaos mode: fault injection armed", "spec", *chaosSpec, "seed", *chaosSeed)
	} else if *chaosAllow {
		return fmt.Errorf("-chaos-allow given without -chaos")
	}

	srv, err := server.New(server.Config{
		CacheSize:      cfgCache,
		PoolSize:       *pool,
		RequestTimeout: *timeout,
		QueueTimeout:   *queueTimeout,
		BatchWindow:    *batchWindow,
		Logger:         logger,
		TraceBuffer:    cfgTrace,
		TraceRetention: *traceKeep,
		TraceMaxSpans:  *traceSpans,
		EnablePprof:    *pprof,
		MaxQueueDepth:  *maxQueue,
		Chaos:          injector,
		DataDir:        *dataDir,
		NodeID:         *nodeID,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "max_wait", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Stop the job scheduler after the listener drains: running jobs
	// checkpoint, requeue, and the store closes cleanly — the next boot's
	// recovery resumes them from their last checkpoint.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("close job store: %w", err)
	}
	logger.Info("drained")
	return nil
}

package cluster

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

func pts(vals ...string) []server.WireSweepPoint {
	out := make([]server.WireSweepPoint, 0, len(vals)/2)
	for i := 0; i+1 < len(vals); i += 2 {
		out = append(out, server.WireSweepPoint{W1: vals[i], U: vals[i+1]})
	}
	return out
}

// TestLeaseLogReplay: grants, renewals, and retirements reduce to the same
// live table after a close/reopen cycle — the invariant a router restart
// depends on.
func TestLeaseLogReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l, err := openLeaseLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	body := json.RawMessage(`{"graph":{"ring":["1","2"]},"grid":8}`)
	if err := l.grant(ctx, &Lease{JobID: "keep", Node: "http://a", Kind: "sweep", Key: "k1", Expiry: 10, Body: body}); err != nil {
		t.Fatal(err)
	}
	if err := l.grant(ctx, &Lease{JobID: "drop", Node: "http://b", Kind: "sweep", Key: "k2", Expiry: 10, Body: body}); err != nil {
		t.Fatal(err)
	}
	exp := time.Unix(0, 999)
	if err := l.renew(ctx, "keep", exp, 0, pts("0", "1", "1/2", "3/2"), 2); err != nil {
		t.Fatal(err)
	}
	// A second renewal splices at its start offset instead of appending
	// blindly, so a re-observed prefix never duplicates points.
	if err := l.renew(ctx, "keep", exp, 2, pts("1", "2"), 3); err != nil {
		t.Fatal(err)
	}
	if err := l.retire(ctx, "drop"); err != nil {
		t.Fatal(err)
	}
	if err := l.renew(ctx, "ghost", exp, 0, nil, 0); err == nil {
		t.Fatal("renewing an unknown lease must fail")
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	l2, err := openLeaseLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	all := l2.all()
	if len(all) != 1 {
		t.Fatalf("replayed table has %d leases, want 1: %+v", len(all), all)
	}
	ls, ok := l2.get("keep")
	if !ok {
		t.Fatal("lease 'keep' lost across replay")
	}
	if ls.Node != "http://a" || ls.Expiry != exp.UnixNano() || ls.NextIndex != 3 {
		t.Fatalf("replayed lease wrong: %+v", ls)
	}
	if len(ls.Points) != 3 || ls.Points[2].W1 != "1" || ls.Points[2].U != "2" {
		t.Fatalf("replayed checkpoint wrong: %+v", ls.Points)
	}
	if string(ls.Body) != string(body) {
		t.Fatalf("replayed body wrong: %s", ls.Body)
	}
}

// TestLeaseLogTornTail: a crash mid-append leaves a partial frame; reopening
// truncates it and keeps everything before it.
func TestLeaseLogTornTail(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	l, err := openLeaseLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.grant(ctx, &Lease{JobID: "j1", Node: "http://a", Key: "k", Expiry: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "leases.wal")
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible frame header promising more bytes than follow.
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := openLeaseLog(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if _, ok := l2.get("j1"); !ok {
		t.Fatal("intact lease lost to torn-tail truncation")
	}
	// The log must be appendable again after truncation.
	if err := l2.grant(ctx, &Lease{JobID: "j2", Node: "http://b", Key: "k", Expiry: 6}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := l2.close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() <= intact.Size() {
		t.Fatalf("log did not grow past the truncated tail: %d -> %d", intact.Size(), after.Size())
	}

	l3, err := openLeaseLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.close()
	if len(l3.all()) != 2 {
		t.Fatalf("final table has %d leases, want 2", len(l3.all()))
	}
}

// TestLeaseLogMemoryOnly: with no data dir the table behaves identically
// minus durability — and never touches the filesystem.
func TestLeaseLogMemoryOnly(t *testing.T) {
	ctx := context.Background()
	l, err := openLeaseLog("")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.grant(ctx, &Lease{JobID: "j", Node: "http://a", Key: "k", Expiry: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.renew(ctx, "j", time.Unix(0, 2), 0, pts("0", "1"), 1); err != nil {
		t.Fatal(err)
	}
	ls, ok := l.get("j")
	if !ok || ls.Expiry != 2 || len(ls.Points) != 1 {
		t.Fatalf("memory-only lease wrong: %+v (ok=%v)", ls, ok)
	}
	if _, appends, syncs := l.stats(); appends != 0 || syncs != 0 {
		t.Fatalf("memory-only mode counted file appends: %d/%d", appends, syncs)
	}
	if err := l.retire(ctx, "j"); err != nil {
		t.Fatal(err)
	}
	if len(l.all()) != 0 {
		t.Fatal("retired lease still live")
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
}

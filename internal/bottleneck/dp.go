package bottleneck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// dpOracle solves the λ-subproblem on graphs whose components are all paths
// or cycles — the only shapes that arise while decomposing the paper's rings
// and split paths — with a three-implicit-state linear dynamic program
// instead of a max-flow. The state tracked is (s_{i-1}, s_i) ∈ {0,1}²,
// whether the previous and current vertex are in S; membership of a vertex
// in Γ(S) is determined by its neighbors, and its charge w_i·[s_{i-1} ∨
// s_{i+1}] is settled as soon as both neighbors are decided.
//
// f_λ separates over components, so the global minimum is the sum of
// per-component minima (each ≤ 0 because ∅ is allowed), and the maximal
// minimizer is the union of per-component maximal minimizers. Per-component
// maximal minimizers are found by membership probes: v belongs to the
// maximal minimizer iff forcing s_v = 1 does not raise the component's
// minimum (minimizers of a submodular function are closed under union).
// dpOracle memoizes the prepared per-component plans for the most recent λ:
// Dinkelbach calls value(λ) and then maximal(λ) at the same λ, and preparing
// a plan costs an O(n) sweep of big.Int multiplies. The memo makes a single
// oracle unsafe for concurrent use; every construction site builds one
// oracle per decomposition stage, used by one goroutine.
type dpOracle struct {
	comps []dpComponent

	memoOK     bool
	memoLambda numeric.Rat
	memoPlans  []dpPlan
}

// dpPlan is a prepared λ-instance for one component: the machine-integer
// fast path when magnitudes fit, the gcd-free big.Int plan otherwise.
type dpPlan struct {
	isInt bool
	ip    intPlan
	bp    bigPlan
}

func (o *dpOracle) plansFor(lambda numeric.Rat) []dpPlan {
	if o.memoOK && o.memoLambda.Equal(lambda) {
		return o.memoPlans
	}
	plans := make([]dpPlan, len(o.comps))
	for i, c := range o.comps {
		if ip, ok := c.intPlanFor(lambda); ok {
			plans[i] = dpPlan{isInt: true, ip: ip}
		} else {
			plans[i] = dpPlan{bp: c.bigPlanFor(lambda)}
		}
	}
	o.memoOK, o.memoLambda, o.memoPlans = true, lambda, plans
	return plans
}

type dpComponent struct {
	order []int // vertices in path/cycle order (original indices)
	ws    []numeric.Rat
	cycle bool
}

// newDPOracle decomposes g into path/cycle components; it fails if any
// component is neither.
func newDPOracle(g *graph.Graph) (*dpOracle, error) {
	o := &dpOracle{}
	for _, comp := range g.Components() {
		sub, orig := g.InducedSubgraph(comp)
		var order []int
		var cycle bool
		switch {
		case sub.IsPath():
			po, err := sub.PathOrder()
			if err != nil {
				return nil, err
			}
			order = po
		case sub.IsRing():
			ro, err := sub.RingOrder(0)
			if err != nil {
				return nil, err
			}
			order = ro
			cycle = true
		default:
			return nil, fmt.Errorf("bottleneck: component %v is neither a path nor a cycle", comp)
		}
		dc := dpComponent{order: make([]int, len(order)), ws: make([]numeric.Rat, len(order)), cycle: cycle}
		for i, v := range order {
			dc.order[i] = orig[v]
			dc.ws[i] = sub.Weight(v)
		}
		o.comps = append(o.comps, dc)
	}
	return o, nil
}

// value sums the per-component minima and minimizer weights with a cheap
// forward-only pass; the full membership machinery runs only in maximal.
func (o *dpOracle) value(lambda numeric.Rat) (numeric.Rat, numeric.Rat) {
	plans := o.plansFor(lambda)
	total, wS := numeric.Zero, numeric.Zero
	for i, c := range o.comps {
		var cw costW
		switch pl := plans[i]; {
		case pl.isInt && c.cycle:
			cw = c.cycleValueInt(pl.ip)
		case pl.isInt:
			cw = c.pathValueInt(pl.ip)
		case c.cycle:
			cw = c.cycleValueBig(pl.bp)
		default:
			cw = c.pathValueBig(pl.bp)
		}
		total = total.Add(cw.cost)
		wS = wS.Add(cw.wS)
	}
	return total, wS
}

func (o *dpOracle) maximal(lambda numeric.Rat) []int {
	plans := o.plansFor(lambda)
	var maximal []int
	for ci, c := range o.comps {
		var members []bool
		switch pl := plans[ci]; {
		case pl.isInt && c.cycle:
			_, members = c.cycleMembershipInt(pl.ip)
		case pl.isInt:
			_, members = c.pathMembershipInt(pl.ip)
		case c.cycle:
			_, members = c.cycleMembershipBig(pl.bp)
		default:
			_, members = c.pathMembershipBig(pl.bp)
		}
		for i, v := range c.order {
			if members[i] {
				maximal = append(maximal, v)
			}
		}
	}
	sortInts(maximal)
	return maximal
}

// costW is a DP cell tracking (minimum cost, maximum minimizer weight among
// cost-minimizers); the weight lets Dinkelbach update λ without extracting
// the minimizer set.
type costW struct {
	cost, wS numeric.Rat
	ok       bool
}

func (a costW) better(b costW) bool {
	if !b.ok {
		return a.ok
	}
	if !a.ok {
		return false
	}
	if c := a.cost.Cmp(b.cost); c != 0 {
		return c < 0
	}
	return b.wS.Less(a.wS)
}

func (a costW) add(cost, w numeric.Rat) costW {
	return costW{cost: a.cost.Add(cost), wS: a.wS.Add(w), ok: true}
}

// valuePass runs the forward-only (cost, weight) DP over the component,
// preferring the machine-integer fast path (dpint.go) whenever the
// magnitudes fit and the gcd-free big.Int plan (dpbig.go) otherwise. The
// fully normalized rational passes below remain as the reference
// implementation the fast paths are tested against.
func (c dpComponent) valuePass(lambda numeric.Rat) costW {
	if pl, ok := c.intPlanFor(lambda); ok {
		if c.cycle {
			return c.cycleValueInt(pl)
		}
		return c.pathValueInt(pl)
	}
	pl := c.bigPlanFor(lambda)
	if c.cycle {
		return c.cycleValueBig(pl)
	}
	return c.pathValueBig(pl)
}

// selCosts precomputes −λ·w_i for every vertex of the component.
func (c dpComponent) selCosts(lambda numeric.Rat) []numeric.Rat {
	sel := make([]numeric.Rat, len(c.ws))
	for i, w := range c.ws {
		sel[i] = lambda.Mul(w).Neg()
	}
	return sel
}

// pathValue is the forward pass of pathMembership restricted to values.
func (c dpComponent) pathValue(sel []numeric.Rat) costW {
	m := len(c.order)
	var dp [2][2]costW
	dp[0][0] = costW{cost: numeric.Zero, ok: true}
	dp[0][1] = costW{cost: sel[0], wS: c.ws[0], ok: true}
	for i := 0; i+1 < m; i++ {
		var ndp [2][2]costW
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !dp[a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					cost := charge(c.ws[i], a == 1 || cb == 1)
					var cand costW
					if cb == 1 {
						cand = dp[a][b].add(cost.Add(sel[i+1]), c.ws[i+1])
					} else {
						cand = dp[a][b].add(cost, numeric.Zero)
					}
					if cand.better(ndp[b][cb]) {
						ndp[b][cb] = cand
					}
				}
			}
		}
		dp = ndp
	}
	best := costW{}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if !dp[a][b].ok {
				continue
			}
			cand := dp[a][b].add(charge(c.ws[m-1], a == 1), numeric.Zero)
			if cand.better(best) {
				best = cand
			}
		}
	}
	return best
}

// cycleValue is the forward pass of cycleMembership restricted to values.
func (c dpComponent) cycleValue(sel []numeric.Rat) costW {
	m := len(c.order)
	best := costW{}
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			var dp [2][2]costW
			init := costW{cost: numeric.Zero, ok: true}
			if s0 == 1 {
				init = init.add(sel[0], c.ws[0])
			}
			if s1 == 1 {
				init = init.add(sel[1], c.ws[1])
			}
			dp[s0][s1] = init
			for i := 1; i+1 < m; i++ {
				var ndp [2][2]costW
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !dp[a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							cost := charge(c.ws[i], a == 1 || cb == 1)
							var cand costW
							if cb == 1 {
								cand = dp[a][b].add(cost.Add(sel[i+1]), c.ws[i+1])
							} else {
								cand = dp[a][b].add(cost, numeric.Zero)
							}
							if cand.better(ndp[b][cb]) {
								ndp[b][cb] = cand
							}
						}
					}
				}
				dp = ndp
			}
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !dp[a][b].ok {
						continue
					}
					cand := dp[a][b].add(
						charge(c.ws[m-1], a == 1 || s0 == 1).Add(charge(c.ws[0], s1 == 1 || b == 1)),
						numeric.Zero)
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
	}
	return best
}

// pathMembership computes, in one forward and one backward sweep, the free
// minimum of f_λ over the path component and for every vertex whether it
// belongs to the maximal minimizer (i.e. whether forcing it into S keeps
// the minimum unchanged).
//
// F[a][b] at position i is the best prefix cost with (s_{i-1}, s_i) = (a,b):
// selection costs of vertices ≤ i plus Γ-charges of vertices ≤ i-1.
// S[b][c] at position i is the best suffix cost with (s_i, s_{i+1}) = (b,c):
// selection costs and Γ-charges of vertices ≥ i+1. Gluing at position i adds
// the one remaining term, vertex i's own charge w_i·[a ∨ c].
func (c dpComponent) pathMembership(lambda numeric.Rat) (numeric.Rat, []bool) {
	m := len(c.order)
	fwd := make([][2][2]dpVal, m)
	for b := 0; b < 2; b++ {
		fwd[0][0][b] = dpVal{v: selCost(lambda, c.ws[0], b == 1), ok: true}
	}
	for i := 0; i+1 < m; i++ {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !fwd[i][a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					cost := fwd[i][a][b].v.
						Add(charge(c.ws[i], a == 1 || cb == 1)).
						Add(selCost(lambda, c.ws[i+1], cb == 1))
					cand := dpVal{v: cost, ok: true}
					if cand.better(fwd[i+1][b][cb]) {
						fwd[i+1][b][cb] = cand
					}
				}
			}
		}
	}
	bwd := make([][2][2]dpVal, m)
	for b := 0; b < 2; b++ {
		bwd[m-1][b][0] = dpVal{v: numeric.Zero, ok: true}
	}
	for i := m - 2; i >= 0; i-- {
		for b := 0; b < 2; b++ {
			for cb := 0; cb < 2; cb++ {
				best := dpVal{}
				for d := 0; d < 2; d++ {
					if !bwd[i+1][cb][d].ok {
						continue
					}
					cost := bwd[i+1][cb][d].v.Add(charge(c.ws[i+1], b == 1 || d == 1))
					cand := dpVal{v: cost, ok: true}
					if cand.better(best) {
						best = cand
					}
				}
				if best.ok {
					bwd[i][b][cb] = dpVal{v: best.v.Add(selCost(lambda, c.ws[i+1], cb == 1)), ok: true}
				}
			}
		}
	}
	// Glue at every position; the global minimum can be read at any i, and
	// membership of vertex i is the constrained minimum with b = 1.
	var globalMin dpVal
	atPos := func(i, bFixed int) dpVal {
		best := dpVal{}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if bFixed >= 0 && b != bFixed {
					continue
				}
				if !fwd[i][a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					if !bwd[i][b][cb].ok {
						continue
					}
					cost := fwd[i][a][b].v.
						Add(charge(c.ws[i], a == 1 || cb == 1)).
						Add(bwd[i][b][cb].v)
					cand := dpVal{v: cost, ok: true}
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
		return best
	}
	globalMin = atPos(0, -1)
	members := make([]bool, m)
	for i := 0; i < m; i++ {
		with := atPos(i, 1)
		members[i] = with.ok && with.v.Equal(globalMin.v)
	}
	return globalMin.v, members
}

// cycleMembership is the cycle analogue of pathMembership: for each of the
// four (s_0, s_1) boundary assignments it runs one forward and one backward
// sweep over positions 1..m-1 and glues them at every position, charging
// the two wrap-around terms w_{m-1}·[s_{m-2} ∨ s_0] and w_0·[s_1 ∨ s_{m-1}]
// at the backward base. O(m) per λ instead of the O(m²) per-vertex probes.
func (c dpComponent) cycleMembership(lambda numeric.Rat) (numeric.Rat, []bool) {
	m := len(c.order)
	if m < 3 {
		panic("bottleneck: cycle with fewer than 3 vertices")
	}
	globalMin := dpVal{}
	memberMin := make([]dpVal, m)

	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			// Forward: F[i][a][b] = best over s_2..s_i with (s_{i-1}, s_i) =
			// (a, b): selection costs of 0..i plus γ-charges of 1..i-1.
			fwd := make([][2][2]dpVal, m)
			fwd[1][s0][s1] = dpVal{
				v:  selCost(lambda, c.ws[0], s0 == 1).Add(selCost(lambda, c.ws[1], s1 == 1)),
				ok: true,
			}
			for i := 1; i+1 < m; i++ {
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !fwd[i][a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							cost := fwd[i][a][b].v.
								Add(charge(c.ws[i], a == 1 || cb == 1)).
								Add(selCost(lambda, c.ws[i+1], cb == 1))
							cand := dpVal{v: cost, ok: true}
							if cand.better(fwd[i+1][b][cb]) {
								fwd[i+1][b][cb] = cand
							}
						}
					}
				}
			}
			// Backward: S[i][b][c] = best suffix with (s_i, s_{i+1}) = (b, c):
			// selection of i+1..m-1, γ-charges of i+1..m-2, plus both wraps.
			bwd := make([][2][2]dpVal, m)
			for b := 0; b < 2; b++ {
				for cb := 0; cb < 2; cb++ {
					cost := selCost(lambda, c.ws[m-1], cb == 1).
						Add(charge(c.ws[m-1], b == 1 || s0 == 1)).
						Add(charge(c.ws[0], s1 == 1 || cb == 1))
					bwd[m-2][b][cb] = dpVal{v: cost, ok: true}
				}
			}
			for i := m - 3; i >= 1; i-- {
				for b := 0; b < 2; b++ {
					for cb := 0; cb < 2; cb++ {
						best := dpVal{}
						for d := 0; d < 2; d++ {
							if !bwd[i+1][cb][d].ok {
								continue
							}
							cost := bwd[i+1][cb][d].v.Add(charge(c.ws[i+1], b == 1 || d == 1))
							cand := dpVal{v: cost, ok: true}
							if cand.better(best) {
								best = cand
							}
						}
						if best.ok {
							bwd[i][b][cb] = dpVal{v: best.v.Add(selCost(lambda, c.ws[i+1], cb == 1)), ok: true}
						}
					}
				}
			}
			// Glue at position i ∈ [1, m-2]: F + γ_i(a, c) + S, optionally
			// pinning b (membership of i) or c (membership of i+1).
			glue := func(i, bFixed, cFixed int) dpVal {
				best := dpVal{}
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if bFixed >= 0 && b != bFixed {
							continue
						}
						if !fwd[i][a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							if cFixed >= 0 && cb != cFixed {
								continue
							}
							if !bwd[i][b][cb].ok {
								continue
							}
							cost := fwd[i][a][b].v.
								Add(charge(c.ws[i], a == 1 || cb == 1)).
								Add(bwd[i][b][cb].v)
							cand := dpVal{v: cost, ok: true}
							if cand.better(best) {
								best = cand
							}
						}
					}
				}
				return best
			}
			free := glue(1, -1, -1)
			if free.better(globalMin) {
				globalMin = free
			}
			update := func(i int, v dpVal) {
				if v.better(memberMin[i]) {
					memberMin[i] = v
				}
			}
			if s0 == 1 {
				update(0, free)
			}
			if s1 == 1 {
				update(1, free)
			}
			for i := 2; i <= m-2; i++ {
				update(i, glue(i, 1, -1))
			}
			update(m-1, glue(m-2, -1, 1))
		}
	}
	members := make([]bool, m)
	for i := range members {
		members[i] = memberMin[i].ok && memberMin[i].v.Equal(globalMin.v)
	}
	return globalMin.v, members
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// dpVal is a DP cell: a value that may be infeasible.
type dpVal struct {
	v  numeric.Rat
	ok bool
}

func (a dpVal) better(b dpVal) bool {
	if !b.ok {
		return a.ok
	}
	return a.ok && a.v.Less(b.v)
}

// min returns the minimum of f_λ over subsets of the component, with
// s_forced = 1 when forced ≥ 0 (forced indexes into c.order).
func (c dpComponent) min(lambda numeric.Rat, forced int) numeric.Rat {
	if c.cycle {
		return c.minCycle(lambda, forced)
	}
	return c.minPath(lambda, forced)
}

// allowed reports which membership bits index i may take.
func allowed(forced, i int) [2]bool {
	if forced == i {
		return [2]bool{false, true}
	}
	return [2]bool{true, true}
}

// charge returns w if cond, else 0.
func charge(w numeric.Rat, cond bool) numeric.Rat {
	if cond {
		return w
	}
	return numeric.Zero
}

// selCost returns -λ·w if sel, else 0.
func selCost(lambda, w numeric.Rat, sel bool) numeric.Rat {
	if sel {
		return lambda.Mul(w).Neg()
	}
	return numeric.Zero
}

// minPath runs the DP over a path component.
//
// dp[a][b] after step i holds the best cost over prefixes with
// (s_{i-1}, s_i) = (a, b): selection costs of vertices ≤ i plus Γ-charges
// of vertices ≤ i-1. Vertex i's Γ-charge w_i·[a ∨ c] is added on the
// transition that reveals c = s_{i+1}; the final vertex's charge w_{m-1}·[a]
// is added at the end (no right neighbor).
func (c dpComponent) minPath(lambda numeric.Rat, forced int) numeric.Rat {
	m := len(c.order)
	var dp [2][2]dpVal
	for _, b := range [2]int{0, 1} {
		if allowed(forced, 0)[b] {
			dp[0][b] = dpVal{v: selCost(lambda, c.ws[0], b == 1), ok: true}
		}
	}
	for i := 0; i+1 < m; i++ {
		var ndp [2][2]dpVal
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !dp[a][b].ok {
					continue
				}
				for cbit := 0; cbit < 2; cbit++ {
					if !allowed(forced, i+1)[cbit] {
						continue
					}
					cost := dp[a][b].v.
						Add(charge(c.ws[i], a == 1 || cbit == 1)).
						Add(selCost(lambda, c.ws[i+1], cbit == 1))
					cand := dpVal{v: cost, ok: true}
					if cand.better(ndp[b][cbit]) {
						ndp[b][cbit] = cand
					}
				}
			}
		}
		dp = ndp
	}
	best := dpVal{}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if !dp[a][b].ok {
				continue
			}
			cand := dpVal{v: dp[a][b].v.Add(charge(c.ws[m-1], a == 1)), ok: true}
			if cand.better(best) {
				best = cand
			}
		}
	}
	if !best.ok {
		panic("bottleneck: infeasible path DP")
	}
	return best.v
}

// minCycle runs the DP over a cycle component by enumerating (s_0, s_1) and
// settling the two wrap-around Γ-charges at the end:
// w_{m-1}·[s_{m-2} ∨ s_0] and w_0·[s_1 ∨ s_{m-1}].
func (c dpComponent) minCycle(lambda numeric.Rat, forced int) numeric.Rat {
	m := len(c.order)
	if m < 3 {
		panic("bottleneck: cycle with fewer than 3 vertices")
	}
	best := dpVal{}
	for s0 := 0; s0 < 2; s0++ {
		if !allowed(forced, 0)[s0] {
			continue
		}
		for s1 := 0; s1 < 2; s1++ {
			if !allowed(forced, 1)[s1] {
				continue
			}
			var dp [2][2]dpVal
			dp[s0][s1] = dpVal{
				v:  selCost(lambda, c.ws[0], s0 == 1).Add(selCost(lambda, c.ws[1], s1 == 1)),
				ok: true,
			}
			for i := 1; i+1 < m; i++ {
				var ndp [2][2]dpVal
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !dp[a][b].ok {
							continue
						}
						for cbit := 0; cbit < 2; cbit++ {
							if !allowed(forced, i+1)[cbit] {
								continue
							}
							cost := dp[a][b].v.
								Add(charge(c.ws[i], a == 1 || cbit == 1)).
								Add(selCost(lambda, c.ws[i+1], cbit == 1))
							cand := dpVal{v: cost, ok: true}
							if cand.better(ndp[b][cbit]) {
								ndp[b][cbit] = cand
							}
						}
					}
				}
				dp = ndp
			}
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !dp[a][b].ok {
						continue
					}
					cost := dp[a][b].v.
						Add(charge(c.ws[m-1], a == 1 || s0 == 1)).
						Add(charge(c.ws[0], s1 == 1 || b == 1))
					cand := dpVal{v: cost, ok: true}
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
	}
	if !best.ok {
		panic("bottleneck: infeasible cycle DP")
	}
	return best.v
}

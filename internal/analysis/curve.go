// Package analysis studies how the bottleneck decomposition, the α-ratio
// and the utility of a single agent respond to its reported weight — the
// single-parameter theory of Cheng et al. [7] (Section III-B of the paper)
// that the incentive-ratio proof is built on:
//
//   - Theorem 10: U_v(x) is continuous and monotonically non-decreasing,
//   - Proposition 11: α_v(x) follows one of three shapes (Cases B-1/B-2/B-3
//     of Fig. 2) and v's class flips at most once, from C to B,
//   - the interval partition {⟨a_i, b_i⟩} of [0, w_v] on which the
//     decomposition structure B(x) is constant,
//   - Proposition 12: at each breakpoint, the pair containing v merges with
//     a neighbor pair or splits in two while every other pair is untouched
//     (Fig. 3), and
//   - Lemma 13: pairs on the far side of α_v are never impacted.
//
// Everything is verified with exact arithmetic on concrete instances; the
// verifiers return detailed errors and are exercised by experiments
// E2/E3/E8 and the test suite.
package analysis

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// CurvePoint is one exact sample of the misreport curve of agent v.
type CurvePoint struct {
	X         numeric.Rat
	U         numeric.Rat
	Alpha     numeric.Rat
	Class     bottleneck.Class
	Signature string
}

// evalReport decomposes g with w_v := x and returns the sample.
func evalReport(g *graph.Graph, v int, x numeric.Rat) (CurvePoint, error) {
	gp := g.Clone()
	gp.MustSetWeight(v, x)
	d, err := bottleneck.Decompose(gp)
	if err != nil {
		return CurvePoint{}, fmt.Errorf("analysis: decomposing at x=%v: %w", x, err)
	}
	return CurvePoint{
		X:         x,
		U:         d.Utility(gp, v),
		Alpha:     d.AlphaOf(v),
		Class:     d.ClassOf(v),
		Signature: d.StructureSignature(),
	}, nil
}

// SampleCurve evaluates the misreport curve at samples+1 uniform exact
// points x = w_v·i/samples, i = 0..samples.
func SampleCurve(g *graph.Graph, v int, samples int) ([]CurvePoint, error) {
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("analysis: vertex %d out of range", v)
	}
	if samples < 1 {
		return nil, fmt.Errorf("analysis: need at least 1 sample")
	}
	w := g.Weight(v)
	out := make([]CurvePoint, samples+1)
	for i := 0; i <= samples; i++ {
		pt, err := evalReport(g, v, w.MulInt(int64(i)).DivInt(int64(samples)))
		if err != nil {
			return nil, err
		}
		out[i] = pt
	}
	return out, nil
}

// VerifyTheorem10 checks monotonicity of U along the sampled curve: for
// every consecutive pair, x_i < x_j must imply U_i ≤ U_j. (Continuity is a
// property of the exact function; on samples we verify the monotone part.)
func VerifyTheorem10(curve []CurvePoint) error {
	for i := 0; i+1 < len(curve); i++ {
		if curve[i+1].U.Less(curve[i].U) {
			return fmt.Errorf("analysis: Theorem 10 violated: U(%v) = %v > U(%v) = %v",
				curve[i].X, curve[i].U, curve[i+1].X, curve[i+1].U)
		}
	}
	return nil
}

// AlphaCase is the Proposition 11 classification of α_v(x) (Fig. 2).
type AlphaCase int

const (
	// CaseB1: α_v non-decreasing, v in C class everywhere.
	CaseB1 AlphaCase = iota
	// CaseB2: α_v non-increasing, v in B class everywhere.
	CaseB2
	// CaseB3: v in C class (α non-decreasing) before x*, B class
	// (non-increasing) after.
	CaseB3
)

// String names the case as in Fig. 2.
func (c AlphaCase) String() string {
	switch c {
	case CaseB1:
		return "Case B-1"
	case CaseB2:
		return "Case B-2"
	case CaseB3:
		return "Case B-3"
	}
	return fmt.Sprintf("AlphaCase(%d)", int(c))
}

// ClassifyAlphaCurve determines the Proposition 11 case of a sampled curve
// and verifies the monotonicity pattern it promises. The x = 0 sample is
// ignored for classification (a weightless agent's class is a boundary
// convention), matching the proposition's open interval (0, x*).
func ClassifyAlphaCurve(curve []CurvePoint) (AlphaCase, error) {
	if len(curve) < 2 {
		return CaseB1, fmt.Errorf("analysis: need at least 2 samples")
	}
	pts := curve
	if pts[0].X.IsZero() && len(pts) > 2 {
		pts = pts[1:]
	}
	// Locate the first strictly-B sample (class flips C → B at x*).
	firstB := -1
	for i, pt := range pts {
		if pt.Class == bottleneck.ClassB {
			firstB = i
			break
		}
	}
	// Verify class pattern: C-ish before firstB, B-ish after (ClassBoth is
	// both, so it is allowed anywhere on the boundary).
	for i, pt := range pts {
		if firstB >= 0 && i >= firstB {
			if !pt.Class.IsB() {
				return CaseB1, fmt.Errorf("analysis: Prop 11 violated: class %v at x=%v after B at x=%v",
					pt.Class, pt.X, pts[firstB].X)
			}
		} else if !pt.Class.IsC() {
			return CaseB1, fmt.Errorf("analysis: Prop 11 violated: class %v at x=%v before any B", pt.Class, pt.X)
		}
	}
	// Verify α monotonicity on each side.
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		inC := firstB == -1 || i+1 < firstB
		if inC && b.Alpha.Less(a.Alpha) {
			return CaseB1, fmt.Errorf("analysis: Prop 11 violated: α decreasing in C phase at x=%v (%v → %v)",
				b.X, a.Alpha, b.Alpha)
		}
		if firstB >= 0 && i >= firstB && a.Alpha.Less(b.Alpha) {
			return CaseB1, fmt.Errorf("analysis: Prop 11 violated: α increasing in B phase at x=%v (%v → %v)",
				b.X, a.Alpha, b.Alpha)
		}
	}
	switch {
	case firstB == -1:
		return CaseB1, nil
	case firstB == 0:
		return CaseB2, nil
	default:
		return CaseB3, nil
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func jobsTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, Config{DataDir: t.TempDir(), MaxQueueDepth: -1})
}

func jobsPost(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func jobsGet(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// waitJobState polls GET /v1/jobs/{id} until the job reaches want.
func waitJobState(t *testing.T, base, id, want string) WireJob {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var j WireJob
	for time.Now().Before(deadline) {
		jobsGet(t, base+"/v1/jobs/"+id, &j)
		if j.State == want {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, j)
	return j
}

// TestJobMatchesInlineSweep is the core equivalence property: a job's final
// Result must be bit-identical to the /v1/sweep response for the same
// request.
func TestJobMatchesInlineSweep(t *testing.T) {
	_, ts := jobsTestServer(t)
	ring := WireGraph{Ring: []string{"1", "3/2", "2", "1/2", "5"}}

	resp, body := jobsPost(t, ts.URL+"/v1/sweep", SweepRequest{Graph: ring, V: 1, Grid: 16})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline sweep: %d %s", resp.StatusCode, body)
	}

	resp, jb := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 1, Grid: 16})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, jb)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(jb, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Deduped || sub.Job.State == "" || sub.Job.TotalPoints != 17 {
		t.Fatalf("submit response: %+v", sub)
	}

	done := waitJobState(t, ts.URL, sub.Job.ID, "done")
	if got, want := strings.TrimSpace(string(done.Result)), strings.TrimSpace(string(body)); got != want {
		t.Fatalf("job result diverges from inline sweep:\n job: %s\nhttp: %s", got, want)
	}
	if done.NextIndex != 17 || len(done.Points) != 17 {
		t.Fatalf("checkpoints: next=%d points=%d", done.NextIndex, len(done.Points))
	}
}

func TestJobSubmitDedupes(t *testing.T) {
	_, ts := jobsTestServer(t)
	// Same instance spelled two ways ("2/6" ≡ "1/3") must dedupe.
	a := JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "2/6", "3"}}, V: 0, Grid: 8}
	b := JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "1/3", "3"}}, V: 0, Grid: 8}

	resp, body := jobsPost(t, ts.URL+"/v1/jobs", a)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	var first JobSubmitResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	resp, body = jobsPost(t, ts.URL+"/v1/jobs", b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: %d %s", resp.StatusCode, body)
	}
	var second JobSubmitResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.Job.ID != first.Job.ID {
		t.Fatalf("dedupe: first %s, second %+v", first.Job.ID, second)
	}
	// A different grid is a different job.
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: a.Graph, V: 0, Grid: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("different-grid submit: %d %s", resp.StatusCode, body)
	}
	var third JobSubmitResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Job.ID == first.Job.ID {
		t.Fatal("different grid deduped to the same job")
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := jobsTestServer(t)
	cases := []struct {
		name string
		req  JobSubmitRequest
		code string
	}{
		{"bad grid", JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "1", "1"}}, Grid: 9999}, CodeBadGrid},
		{"not ring", JobSubmitRequest{Graph: WireGraph{Path: []string{"1", "2"}}}, CodeNotRing},
		{"bad agent", JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "1", "1"}}, V: 7}, CodeBadAgent},
		{"bad graph", JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "x", "1"}}}, CodeBadGraph},
	}
	for _, tc := range cases {
		resp, body := jobsPost(t, ts.URL+"/v1/jobs", tc.req)
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.StatusCode != http.StatusBadRequest || e.Code != tc.code {
			t.Errorf("%s: status %d code %q, want 400 %q", tc.name, resp.StatusCode, e.Code, tc.code)
		}
	}

	resp := jobsGet(t, ts.URL+"/v1/jobs/jnope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job GET: %d", resp.StatusCode)
	}
	resp = jobsGet(t, ts.URL+"/v1/jobs?cursor=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d", resp.StatusCode)
	}
	resp = jobsGet(t, ts.URL+"/v1/jobs?state=exploded", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad state filter: %d", resp.StatusCode)
	}
}

func TestJobsDisabledWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "1", "1"}}})
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotImplemented || e.Code != CodeJobsDisabled {
		t.Fatalf("submit without data dir: %d %q", resp.StatusCode, e.Code)
	}
	for _, url := range []string{ts.URL + "/v1/jobs", ts.URL + "/v1/jobs/j123"} {
		if resp := jobsGet(t, url, nil); resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("GET %s without data dir: %d", url, resp.StatusCode)
		}
	}
}

func TestJobListPagination(t *testing.T) {
	_, ts := jobsTestServer(t)
	for i := 0; i < 5; i++ {
		grid := 4 + i
		resp, body := jobsPost(t, ts.URL+"/v1/jobs",
			JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "2", "3"}}, V: 0, Grid: grid})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	var seen []string
	cursor := ""
	pages := 0
	for {
		url := ts.URL + "/v1/jobs?limit=2" + cursor
		var page JobListResponse
		if resp := jobsGet(t, url, &page); resp.StatusCode != http.StatusOK {
			t.Fatalf("list: %d", resp.StatusCode)
		}
		for _, j := range page.Jobs {
			seen = append(seen, j.ID)
		}
		pages++
		if page.NextCursor == 0 {
			break
		}
		cursor = fmt.Sprintf("&cursor=%d", page.NextCursor)
	}
	if len(seen) != 5 || pages != 3 {
		t.Fatalf("pagination: %d jobs over %d pages", len(seen), pages)
	}
	uniq := map[string]bool{}
	for _, id := range seen {
		uniq[id] = true
	}
	if len(uniq) != 5 {
		t.Fatalf("duplicate IDs across pages: %v", seen)
	}

	// Wait for all to finish, then the state filter must partition cleanly.
	for _, id := range seen {
		waitJobState(t, ts.URL, id, "done")
	}
	var done JobListResponse
	jobsGet(t, ts.URL+"/v1/jobs?state=done", &done)
	if len(done.Jobs) != 5 {
		t.Fatalf("state=done: %d jobs", len(done.Jobs))
	}
	var queued JobListResponse
	jobsGet(t, ts.URL+"/v1/jobs?state=queued", &queued)
	if len(queued.Jobs) != 0 {
		t.Fatalf("state=queued after completion: %d jobs", len(queued.Jobs))
	}
}

func TestJobCancel(t *testing.T) {
	_, ts := jobsTestServer(t)
	// A big grid keeps the job running long enough to cancel it.
	resp, body := jobsPost(t, ts.URL+"/v1/jobs",
		JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "3/2", "2", "5/3", "7", "1/9", "4", "11/2"}}, V: 2, Grid: 4096})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	got := waitJobState(t, ts.URL, sub.Job.ID, "canceled")
	if got.Result != nil {
		t.Fatalf("canceled job has a result: %+v", got)
	}

	// Canceling a terminal job is a conflict.
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	err = json.NewDecoder(dresp.Body).Decode(&e)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusConflict || e.Code != CodeJobTerminal {
		t.Fatalf("double cancel: %d %q", dresp.StatusCode, e.Code)
	}
}

func TestJobsMetricsExposed(t *testing.T) {
	_, ts := jobsTestServer(t)
	resp, body := jobsPost(t, ts.URL+"/v1/jobs", JobSubmitRequest{Graph: WireGraph{Ring: []string{"1", "2", "3"}}, Grid: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts.URL, sub.Job.ID, "done")

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`irshared_jobs_total{state="done"} 1`,
		"irshared_jobs_queue_depth 0",
		"irshared_jobs_running 0",
		"irshared_job_age_seconds_count 1",
		"irshared_jobs_wal_appends_total",
		"irshared_jobs_wal_syncs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// A server without jobs must not grow the exposition.
	_, plain := newTestServer(t, Config{})
	presp, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	pdata, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(pdata), "irshared_jobs_") {
		t.Error("jobs series exposed without a data dir")
	}
}

// TestJobRecoveryAcrossServers exercises recovery at the server layer: a
// first server accepts a job and is closed mid-run; a second server over
// the same data dir recovers it and completes it with a result identical to
// an uninterrupted inline sweep.
func TestJobRecoveryAcrossServers(t *testing.T) {
	dir := t.TempDir()
	ring := WireGraph{Ring: []string{"1", "3/2", "2", "1/2", "5", "7/3", "4"}}

	srv1, ts1 := newTestServer(t, Config{DataDir: dir, MaxQueueDepth: -1})
	want := func() string {
		resp, body := jobsPost(t, ts1.URL+"/v1/sweep", SweepRequest{Graph: ring, V: 1, Grid: 192})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inline sweep: %d %s", resp.StatusCode, body)
		}
		return strings.TrimSpace(string(body))
	}()

	resp, body := jobsPost(t, ts1.URL+"/v1/jobs", JobSubmitRequest{Graph: ring, V: 1, Grid: 192})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	// Close the first server while the job is (likely) mid-run. Close blocks
	// until the worker has checkpointed and requeued.
	srv1.Close()

	srv2, ts2 := newTestServer(t, Config{DataDir: dir, MaxQueueDepth: -1})
	defer srv2.Close()
	done := waitJobState(t, ts2.URL, sub.Job.ID, "done")
	if got := strings.TrimSpace(string(done.Result)); got != want {
		t.Fatalf("recovered result diverges:\n got: %s\nwant: %s", got, want)
	}
}

// Command sybilscan searches for worst-case Sybil attack instances.
//
// Modes:
//
//	sybilscan rings   [-n N] [-trials T] [-dist D] [-seed S] [-grid G] [-top K]
//	    random rings: report the K highest incentive ratios found
//	sybilscan family  [-kmax K] [-heavy H] [-grid G]
//	    sweep the lower-bound family (ratio → 2)
//	sybilscan general [-n N] [-trials T] [-seed S] [-gridres R]
//	    random general graphs with exhaustive m-split search (conjecture)
//	sybilscan sweep   [-n N] [-dist D] [-seed S] [-grid G] [-cold]
//	    dense w1 sweep on one random ring: best sampled split, incremental
//	    engine timing vs the from-scratch baseline, and solver statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sybilscan:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sybilscan <rings|family|general> [flags]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		n       = fs.Int("n", 9, "graph size")
		trials  = fs.Int("trials", 50, "instances to try")
		distStr = fs.String("dist", "uniform", "weight distribution: uniform|skewed|powers|unit")
		seed    = fs.Int64("seed", 1, "random seed")
		grid    = fs.Int("grid", 64, "split-optimizer grid")
		top     = fs.Int("top", 5, "how many best instances to report")
		kmax    = fs.Int("kmax", 16, "largest family index")
		heavy   = fs.String("heavy", "1000000", "heavy vertex weight")
		gridres = fs.Int("gridres", 8, "weight-simplex grid for general search")
		cold    = fs.Bool("cold", false, "sweep: disable the incremental engine (baseline timing only)")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	dist, err := parseDist(*distStr)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	switch cmd {
	case "rings":
		type hit struct {
			ratio numeric.Rat
			ws    []numeric.Rat
			v     int
		}
		var hits []hit
		for trial := 0; trial < *trials; trial++ {
			g := graph.RandomRing(rng, *n, dist)
			v := rng.Intn(*n)
			ratio, err := core.RingRatio(g, v, core.OptimizeOptions{Grid: *grid})
			if err != nil {
				return err
			}
			if numeric.Two.Less(ratio) {
				return fmt.Errorf("THEOREM 8 VIOLATION: ratio %v on %v (v=%d)", ratio, g.Weights(), v)
			}
			hits = append(hits, hit{ratio: ratio, ws: g.Weights(), v: v})
		}
		sort.Slice(hits, func(i, j int) bool { return hits[j].ratio.Less(hits[i].ratio) })
		if *top > len(hits) {
			*top = len(hits)
		}
		fmt.Fprintf(w, "top %d of %d random %v rings (n=%d):\n", *top, *trials, dist, *n)
		for _, h := range hits[:*top] {
			fmt.Fprintf(w, "  ζ = %-10.6f v=%d w=%v\n", h.ratio.Float64(), h.v, h.ws)
		}
		return nil

	case "family":
		h, err := numeric.Parse(*heavy)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "lower-bound family: odd unit ring + heavy vertex, attacker at distance 3")
		for k := 0; k <= *kmax; k *= 2 {
			g, v, err := core.LowerBoundFamily(k, h)
			if err != nil {
				return err
			}
			ratio, err := core.RingRatio(g, v, core.OptimizeOptions{Grid: *grid})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  k=%-3d n=%-3d measured=%.6f limit=%v gap-to-2=%.6f\n",
				k, g.N(), ratio.Float64(), core.LowerBoundLimitRatio(k), 2-ratio.Float64())
			if k == 0 {
				k = 1
			}
		}
		return nil

	case "general":
		worst := numeric.One
		var worstDesc string
		for trial := 0; trial < *trials; trial++ {
			g := graph.RandomConnected(rng, *n, 0.5, dist)
			v := rng.Intn(g.N())
			if g.Degree(v) == 0 {
				continue
			}
			res, err := sybil.Search(g, v, sybil.SearchOptions{GridResolution: *gridres})
			if err != nil {
				return err
			}
			if numeric.Two.Less(res.Ratio) {
				return fmt.Errorf("CONJECTURE VIOLATION: ratio %v on %v (v=%d, %d identities)",
					res.Ratio, g.Weights(), v, len(res.Spec.Parts))
			}
			if worst.Less(res.Ratio) {
				worst = res.Ratio
				worstDesc = fmt.Sprintf("v=%d m=%d w=%v edges=%v",
					v, len(res.Spec.Parts), g.Weights(), g.Edges())
			}
		}
		fmt.Fprintf(w, "general graphs (n=%d, %d trials): worst ratio %.6f ≤ 2\n", *n, *trials, worst.Float64())
		if worstDesc != "" {
			fmt.Fprintln(w, "  argmax:", worstDesc)
		}
		return nil

	case "sweep":
		if *grid <= 0 {
			*grid = 64 // RingSweep's own default; keep the report honest
		}
		g := graph.RandomRing(rng, *n, dist)
		v := rng.Intn(*n)
		t0 := time.Now()
		sw, err := sybil.RingSweep(g, v, sybil.SweepOptions{Grid: *grid, Cold: *cold})
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		mode := "incremental"
		if *cold {
			mode = "cold"
		}
		fmt.Fprintf(w, "sweep of %d splits on a random %v ring (n=%d, v=%d, %s engine): %v\n",
			*grid+1, dist, *n, v, mode, elapsed.Round(time.Microsecond))
		fmt.Fprintf(w, "  best sampled split w1 = %v  U = %.6f  honest = %.6f  ratio = %.6f\n",
			sw.BestW1, sw.BestU.Float64(), sw.Honest.Float64(), sw.Ratio.Float64())
		st := sw.Stats.Solver
		fmt.Fprintf(w, "  solver: %d evals (%d stock fallbacks), Dinkelbach warm/cold %d/%d + %d/%d later, %d warm restarts\n",
			st.Evals, st.Fallbacks, st.Stage1Warm, st.Stage1Cold, st.LaterWarm, st.LaterCold, st.WarmRestarts)
		fmt.Fprintf(w, "  caches: transfers %d hit / %d miss, tails %d hit / %d miss\n",
			st.TransferHits, st.TransferMisses, st.TailHits, st.TailMisses)
		if !*cold {
			// Re-run from scratch for an in-place before/after comparison.
			t1 := time.Now()
			cw, err := sybil.RingSweep(g, v, sybil.SweepOptions{Grid: *grid, Cold: true})
			if err != nil {
				return err
			}
			coldElapsed := time.Since(t1)
			if !cw.BestU.Equal(sw.BestU) || !cw.Ratio.Equal(sw.Ratio) {
				return fmt.Errorf("ENGINE MISMATCH: incremental (U=%v ζ=%v) vs cold (U=%v ζ=%v)",
					sw.BestU, sw.Ratio, cw.BestU, cw.Ratio)
			}
			fmt.Fprintf(w, "  cold baseline (identical results): %v  (%.1fx slower)\n",
				coldElapsed.Round(time.Microsecond), float64(coldElapsed)/float64(elapsed))
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parseDist(s string) (graph.WeightDist, error) {
	switch s {
	case "uniform":
		return graph.DistUniform, nil
	case "skewed":
		return graph.DistSkewed, nil
	case "powers":
		return graph.DistPowers, nil
	case "unit":
		return graph.DistUnit, nil
	}
	return 0, fmt.Errorf("unknown distribution %q", s)
}

package client

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/server"
)

// Scenario wire types, shared with the server package via aliases like the
// rest of the API surface.
type (
	// ScenarioRequest is the body of POST /v1/scenario and, nested under
	// JobSubmitRequest.Scenario, the parameterization of the durable job
	// kinds "ksybil", "coalition", and "topology".
	ScenarioRequest = server.ScenarioRequest
	// ScenarioResponse is the answer of /v1/scenario: exactly one of the
	// KSybil, Coalition, or Topology payloads is set, matching Kind.
	ScenarioResponse = server.ScenarioResponse
	// ScenarioKSybilResult is the payload of a kind "ksybil" scenario.
	ScenarioKSybilResult = server.ScenarioKSybilResult
	// ScenarioCoalitionResult is the payload of a kind "coalition" scenario.
	ScenarioCoalitionResult = server.ScenarioCoalitionResult
	// ScenarioTopologyResult is the payload of a kind "topology" scenario.
	ScenarioTopologyResult = server.ScenarioTopologyResult
)

// Scenario calls POST /v1/scenario: a strategic-manipulation scan (k-identity
// Sybil, coalition misreporting, or a graph-family topology scan) computed
// inline. For large grids, submit the same request as a durable job with
// SubmitScenario instead.
func (c *Client) Scenario(ctx context.Context, req *ScenarioRequest) (*ScenarioResponse, error) {
	var resp ScenarioResponse
	if err := c.do(ctx, "/v1/scenario", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitScenario enqueues req as a durable job of its own kind. Submission
// is content-addressed like every other job kind; the finished job's Result
// is bit-identical to the inline /v1/scenario answer and decodes with
// ScenarioResult.
func (c *Client) SubmitScenario(ctx context.Context, req *ScenarioRequest) (*JobSubmitResponse, error) {
	return c.SubmitJob(ctx, &JobSubmitRequest{Kind: req.Kind, Scenario: req})
}

// ScenarioResult decodes the final result of a finished scenario job. It
// rejects jobs that are not done yet and jobs of non-scenario kinds, so a
// caller iterating a mixed job list can feed it only what it claims to
// handle.
func ScenarioResult(job *Job) (*ScenarioResponse, error) {
	if job == nil {
		return nil, fmt.Errorf("client: scenario result of nil job")
	}
	switch job.Kind {
	case "ksybil", "coalition", "topology":
	default:
		return nil, fmt.Errorf("client: job %s has kind %q, not a scenario kind", job.ID, job.Kind)
	}
	if job.State != JobDone {
		return nil, fmt.Errorf("client: job %s is %s, not done", job.ID, job.State)
	}
	var resp ScenarioResponse
	if err := json.Unmarshal(job.Result, &resp); err != nil {
		return nil, fmt.Errorf("client: decode scenario result of job %s: %w", job.ID, err)
	}
	return &resp, nil
}

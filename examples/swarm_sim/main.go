// Swarm simulation: run the proportional response protocol as a concurrent
// message-passing P2P swarm (the BitTorrent-style setting that motivates
// the paper), then replay it with a Sybil attacker and compare what the
// attacker harvests against the exact mechanism's prediction.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The k = 2 member of the tight family with a moderate heavy peer.
	g := repro.Ring(repro.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1))
	attacker := 3

	// Honest swarm: every peer follows the protocol.
	honest, err := repro.RunSwarm(g, repro.SwarmConfig{
		Rounds:      8000,
		TrackAgents: []int{attacker},
	})
	if err != nil {
		log.Fatal(err)
	}
	h := honest.History[0]
	fmt.Printf("honest swarm: %d messages; attacker utility %0.6f → %0.6f → %0.6f\n",
		honest.Messages, h[0], h[len(h)/2], h[len(h)-1])

	// Exact analysis: the attacker's optimal split and predicted gain.
	in, err := repro.NewInstance(g, attacker)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := in.Optimize(repro.OptimizeOptions{Grid: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimizer: best split %0.6f / %0.6f, predicted gain ×%0.6f\n",
		opt.BestW1.Float64(), in.W().Sub(opt.BestW1).Float64(), opt.Ratio.Float64())

	// Sybil swarm: the attacker actually splits into two identities at the
	// network level and the whole swarm re-runs.
	ring, err := g.RingOrder(attacker)
	if err != nil {
		log.Fatal(err)
	}
	spec := repro.SplitSpec{
		V:       attacker,
		Parts:   [][]int{{ring[1]}, {ring[len(ring)-1]}},
		Weights: []repro.Rat{opt.BestW1, in.W().Sub(opt.BestW1)},
	}
	cmp, err := repro.CompareSwarmAttack(g, spec, repro.SwarmConfig{Rounds: 8000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sybil swarm: identities %v harvest %0.6f vs honest %0.6f → realized gain ×%0.6f\n",
		cmp.Identities, cmp.SybilUtility, cmp.HonestUtility, cmp.Gain)
	fmt.Printf("Theorem 8 bound respected (gain ≤ 2): %v\n", cmp.Gain <= 2.000001)
}

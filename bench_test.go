package repro

// One benchmark per reproduced table/figure (E1–E14, DESIGN.md §4), driving
// the same experiment code that cmd/experiments uses for the recorded
// results, plus micro-benchmarks of the load-bearing kernels (exact
// arithmetic, max-flow, decomposition engines, the split optimizer, one
// swarm round). Regenerate everything with:
//
//	go test -bench=. -benchmem ./...

import (
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/numeric"
	"repro/internal/p2p"
)

func benchScale() experiments.Scale { return experiments.Quick }

func BenchmarkE1Fig1Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Fig2AlphaCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2Fig2(24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3Fig3PairEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3Fig3(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Fig4InitialForms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4Fig4(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Theorem8UpperBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5Theorem8UpperBound(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6LowerBoundFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6LowerBoundFamily([]int{0, 1, 2, 4}, numeric.FromInt(100000), 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Lemma9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7Lemma9(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Theorem10Monotonicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Theorem10(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9StageDeltas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9StageDeltas(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10DynamicsConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10DynamicsConvergence(1 << 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11MisreportTruthful(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E11Misreport(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12SolverAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12SolverAblation([]int{8, 16, 32}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13GeneralConjecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E13GeneralConjecture(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14SwarmAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E14SwarmAttack(4000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE15AsyncRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E15AsyncRobustness(8000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE16CoalitionAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E16CoalitionAttack(4, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17FreeRiding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E17FreeRiding(4000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks -----------------------------------------------------

func BenchmarkRatAddFastPath(b *testing.B) {
	x, y := numeric.New(355, 113), numeric.New(22, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkRatMulBigFallback(b *testing.B) {
	x := numeric.New(1<<62, 3)
	y := numeric.New(1<<61, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func benchRing(n int) *graph.Graph {
	return graph.RandomRing(rand.New(rand.NewSource(42)), n, graph.DistUniform)
}

func BenchmarkDecomposePathDP(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g := benchRing(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bottleneck.DecomposeWith(g, bottleneck.EnginePathDP); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecomposeFlow(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g := benchRing(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bottleneck.DecomposeWith(g, bottleneck.EngineFlow); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func buildLambdaNetwork(g *graph.Graph) *maxflow.Network {
	n := g.N()
	nw := maxflow.NewNetwork(2*n+2, 2*n, 2*n+1)
	for v := 0; v < n; v++ {
		nw.AddEdge(2*n, v, maxflow.Finite(g.Weight(v)))
		nw.AddEdge(n+v, 2*n+1, maxflow.Finite(g.Weight(v)))
		for _, u := range g.Neighbors(v) {
			nw.AddEdge(v, n+u, maxflow.Inf)
		}
	}
	return nw
}

func BenchmarkMaxflow(b *testing.B) {
	g := benchRing(64)
	for _, algo := range []maxflow.Algorithm{maxflow.Dinic, maxflow.PushRelabel, maxflow.EdmondsKarp} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw := buildLambdaNetwork(g)
				nw.Solve(algo)
			}
		})
	}
}

// BenchmarkEvalSplitIncremental measures a w1 sweep on one fixed Instance —
// the incremental engine's home turf: the interior transfers, warm-start
// hints and residual tails accumulated by earlier evaluations accelerate
// later ones. The (w1, w2) → PathEval memoization is disabled so every
// iteration performs a real decomposition (with it on, a sweep over a fixed
// grid degenerates into map lookups).
func BenchmarkEvalSplitIncremental(b *testing.B) {
	benchEvalSplit(b, true)
}

// BenchmarkEvalSplitStock is the identical sweep with the incremental engine
// disabled — each evaluation runs a stock DecomposeWith, the seed execution
// path.
func BenchmarkEvalSplitStock(b *testing.B) {
	benchEvalSplit(b, false)
}

func benchEvalSplit(b *testing.B, incremental bool) {
	for _, n := range []int{33, 65, 129} {
		g, v, err := core.LowerBoundFamily((n-5)/2, numeric.FromInt(1000))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			in, err := core.NewInstance(g, v)
			if err != nil {
				b.Fatal(err)
			}
			in.SetEvalCache(false)
			in.SetIncremental(incremental)
			W := in.W()
			// 1009 distinct splits, revisited cyclically: past the first lap
			// the sweep is in the steady state an optimizer run lives in.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w1 := W.MulInt(int64(i%1009 + 1)).DivInt(1010)
				if _, err := in.EvalSplit(w1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeSplit measures one complete split optimization with the
// incremental machinery live. A fresh Instance per iteration keeps the
// measurement honest: every iteration pays for its own caches, exactly like
// a caller optimizing a new ring.
func BenchmarkOptimizeSplit(b *testing.B) {
	benchOptimizeSplit(b, core.OptimizeOptions{Grid: 32})
}

// BenchmarkOptimizeSplitCold is the same workload with the evaluation cache
// and the incremental engine disabled — the seed implementation's execution
// path, kept runnable for before/after comparisons (see BENCH_optimize.json
// and cmd/benchjson).
func BenchmarkOptimizeSplitCold(b *testing.B) {
	benchOptimizeSplit(b, core.OptimizeOptions{Grid: 32, DisableEvalCache: true, DisableIncremental: true})
}

func benchOptimizeSplit(b *testing.B, opts core.OptimizeOptions) {
	for _, n := range []int{9, 17, 33, 65, 129} {
		g, v, err := core.LowerBoundFamily((n-5)/2, numeric.FromInt(1000))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in, err := core.NewInstance(g, v)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := in.Optimize(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSwarmRounds(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g := benchRing(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p2p.Run(g, p2p.Config{Rounds: 100}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n < 10:
		return "n=00" + string(rune('0'+n))
	case n < 100:
		return "n=0" + itoa(n)
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// handleTrace serves GET /debug/trace?id=<n>: the span-tree snapshot of a
// recently finished request (or batched computation), as minted by the
// collector and echoed in the X-Trace-Id response header. Ids that were
// never issued, were evicted from the bounded ring buffer, or have aged
// past the retention window all answer a clean 404 — the buffer is a
// diagnostic window, not a durable store.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.collector == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "request tracing is disabled")
		return
	}
	raw := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || id == 0 {
		writeError(w, http.StatusBadRequest, CodeBadBody, fmt.Sprintf("invalid trace id %q", raw))
		return
	}
	snap, ok := s.collector.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("trace %d not found (unknown, still in flight, evicted, or expired)", id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

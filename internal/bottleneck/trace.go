package bottleneck

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// TraceKind tags a decomposition trace event.
type TraceKind int

const (
	// TraceStageStart fires when a new residual graph is about to be solved.
	TraceStageStart TraceKind = iota
	// TraceDinkelbachIter fires per parametric iteration with the current
	// λ and the subproblem minimum g(λ).
	TraceDinkelbachIter
	// TraceStageExtracted fires when a bottleneck pair is committed.
	TraceStageExtracted
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceStageStart:
		return "stage-start"
	case TraceDinkelbachIter:
		return "dinkelbach-iter"
	case TraceStageExtracted:
		return "stage-extracted"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one observation of the decomposition in progress. Vertex
// indices are in the ORIGINAL graph's numbering.
type TraceEvent struct {
	Kind TraceKind
	// Stage is the 1-based index of the pair being worked on.
	Stage int
	// Remaining is the residual vertex count at the event.
	Remaining int
	// Lambda and Value are set on TraceDinkelbachIter: the current ratio
	// candidate and the subproblem minimum g(λ) (0 exactly at termination).
	Lambda, Value numeric.Rat
	// Pair is set on TraceStageExtracted.
	Pair *Pair
}

// TraceFunc observes decomposition events; it must not retain Pair.
type TraceFunc func(TraceEvent)

// String renders the event for logs.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceStageStart:
		return fmt.Sprintf("stage %d: solving residual graph of %d vertices", e.Stage, e.Remaining)
	case TraceDinkelbachIter:
		return fmt.Sprintf("stage %d: λ = %s, g(λ) = %s", e.Stage, e.Lambda, e.Value)
	case TraceStageExtracted:
		return fmt.Sprintf("stage %d: extracted %s", e.Stage, *e.Pair)
	}
	return "unknown trace event"
}

// DecomposeTraced is DecomposeWith with an observer: every Dinkelbach
// iteration and extracted pair is reported through trace. The zero-weight
// convention pass is silent (it performs no parametric work).
//
// Deprecated: the callback hooks are generalized by the internal/obs span
// recorder — run DecomposeCtx with a context carrying an obs span (e.g. via
// repro.Decompose with WithRecorder) to get the same per-stage and
// per-iteration events inside a retrievable span tree. DecomposeTraced
// remains for callers that want a synchronous callback; both mechanisms can
// be active at once.
func DecomposeTraced(g *graph.Graph, engine Engine, trace TraceFunc) (*Decomposition, error) {
	return decomposeInner(context.Background(), g, engine, trace)
}

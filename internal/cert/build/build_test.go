package build_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

func rs(ns ...int64) []numeric.Rat {
	out := make([]numeric.Rat, len(ns))
	for i, n := range ns {
		out[i] = numeric.FromInt(n)
	}
	return out
}

// rings used across the round-trip tests: uniform, the paper's running
// example shapes, zero-weight clusters, and a near-tight frontier instance.
func testRings() []*graph.Graph {
	return []*graph.Graph{
		graph.Ring(rs(1, 1, 1)),
		graph.Ring(rs(1, 2, 3, 4)),
		graph.Ring(rs(3, 1, 2, 1, 5)),
		graph.Ring(rs(1, 0, 2, 0)),
		graph.Ring(rs(0, 0, 0)),
		graph.Ring(rs(1, 100, 1, 1, 100, 1)),
		graph.Ring([]numeric.Rat{numeric.New(1, 3), numeric.New(2, 7), numeric.FromInt(4), numeric.New(5, 2)}),
	}
}

func TestDecompositionCertRoundTrip(t *testing.T) {
	graphs := testRings()
	graphs = append(graphs,
		graph.Path(rs(1, 2, 3)),
		graph.Star(rs(5, 1, 1, 1)),
		graph.Complete(rs(1, 2, 3, 4)),
	)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		graphs = append(graphs, graph.RandomConnected(rng, 3+rng.Intn(6), 0.5, graph.DistUniform))
	}
	for gi, g := range graphs {
		dec, err := bottleneck.Decompose(g)
		if err != nil {
			t.Fatalf("graph %d: decompose: %v", gi, err)
		}
		c, err := build.Decomposition(context.Background(), g, dec)
		if err != nil {
			t.Fatalf("graph %d: build: %v", gi, err)
		}
		if err := cert.Check(c); err != nil {
			t.Fatalf("graph %d: check: %v", gi, err)
		}
		assertJSONStable(t, c, func() cert.Checkable { return new(cert.DecompositionCert) })
	}
}

func TestRatioCertRoundTrip(t *testing.T) {
	ctx := context.Background()
	for gi, g := range testRings() {
		for v := 0; v < g.N(); v++ {
			in, err := core.NewInstanceCtx(ctx, g, v)
			if err != nil {
				// Some zero-weight rings are rejected by the honest-side
				// allocation itself (a solver precondition, not a cert
				// concern); nothing to certify there.
				t.Logf("ring %d v=%d: not analyzable: %v", gi, v, err)
				continue
			}
			opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: 12})
			if err != nil {
				t.Fatalf("ring %d v=%d: optimize: %v", gi, v, err)
			}
			rc, err := build.Ratio(ctx, in, opt)
			if err != nil {
				t.Fatalf("ring %d v=%d: build: %v", gi, v, err)
			}
			if err := cert.Check(rc); err != nil {
				t.Fatalf("ring %d v=%d: check: %v", gi, v, err)
			}
			if rc.Ratio != opt.Ratio.String() {
				t.Fatalf("ring %d v=%d: cert ratio %s, solver %v", gi, v, rc.Ratio, opt.Ratio)
			}
			assertJSONStable(t, rc, func() cert.Checkable { return new(cert.RatioCert) })
		}
	}
}

func TestSweepCertRoundTrip(t *testing.T) {
	ctx := context.Background()
	for gi, g := range testRings() {
		in, err := core.NewInstanceCtx(ctx, g, 0)
		if err != nil {
			t.Logf("ring %d: not analyzable: %v", gi, err)
			continue
		}
		res, err := sybil.SweepInstanceCtx(ctx, in, sybil.SweepOptions{Grid: 8})
		if err != nil {
			t.Fatalf("ring %d: sweep: %v", gi, err)
		}
		sc, err := build.Sweep(ctx, in, res, 8)
		if err != nil {
			t.Fatalf("ring %d: build: %v", gi, err)
		}
		if err := cert.Check(sc); err != nil {
			t.Fatalf("ring %d: check: %v", gi, err)
		}
		assertJSONStable(t, sc, func() cert.Checkable { return new(cert.SweepCert) })
	}
}

// TestSweepCertPartial certifies a resumed tail: Start > 0.
func TestSweepCertPartial(t *testing.T) {
	ctx := context.Background()
	g := graph.Ring(rs(3, 1, 2, 1, 5))
	in, err := core.NewInstanceCtx(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sybil.SweepInstanceCtx(ctx, in, sybil.SweepOptions{Grid: 8, Start: 3})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := build.Sweep(ctx, in, res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Start != 3 || len(sc.Points) != 6 {
		t.Fatalf("start=%d points=%d, want 3 and 6", sc.Start, len(sc.Points))
	}
	if err := cert.Check(sc); err != nil {
		t.Fatal(err)
	}
}

// TestPieceFormulasPresent asserts the exact closed forms actually
// materialize (the model is not silently disabled on ordinary instances).
func TestPieceFormulasPresent(t *testing.T) {
	ctx := context.Background()
	g := graph.Ring(rs(3, 1, 2, 1, 5))
	in, err := core.NewInstanceCtx(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: 16})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := build.Ratio(ctx, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, p := range rc.Pieces {
		if p.FormulaExact {
			exact++
		}
	}
	if exact == 0 {
		t.Fatalf("no piece carries an exact closed form (pieces: %d)", len(rc.Pieces))
	}
	if err := cert.Check(rc); err != nil {
		t.Fatal(err)
	}
}

// assertJSONStable checks encode → decode → Check → re-encode is
// bit-identical: certificates are canonical bytes, so identity is textual.
func assertJSONStable(t *testing.T, c cert.Checkable, fresh func() cert.Checkable) {
	t.Helper()
	b1, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	d := fresh()
	if err := json.Unmarshal(b1, d); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := cert.Check(d); err != nil {
		t.Fatalf("decoded certificate fails check: %v", err)
	}
	b2, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("round trip not bit-identical:\n%s\n%s", b1, b2)
	}
}

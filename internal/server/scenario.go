package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// The scenario layer: POST /v1/scenario runs one strategic-manipulation
// scan (internal/scenario) inline, and kinds "ksybil"/"coalition"/"topology"
// of POST /v1/jobs run the same scans as durable, checkpointed jobs. Both
// paths share one validator and one execution core, so a job's final Result
// is byte-identical to the inline response of the same request — whether or
// not the job was ever interrupted.

// Scenario limits. Scans fan out allocations per point, so every axis is
// capped at submission; violations answer 400 scenario_limit.
const (
	// minScenarioK/maxScenarioK bound the identity count of a ksybil scan.
	minScenarioK = 2
	maxScenarioK = 8
	// maxScenarioPoints caps the total point count of any scenario scan
	// (grid points for ksybil/coalition, instances for topology).
	maxScenarioPoints = 4096
	// maxCoalitionMembers bounds the coalition size; the grid is
	// Grid^members, so this also bounds the exponent.
	maxCoalitionMembers = 4
	// maxTopologyN / maxTopologyCount / maxTopologyGrid bound a topology
	// scan: each instance costs n·(grid−1) full allocations.
	maxTopologyN     = 64
	maxTopologyCount = 64
	maxTopologyGrid  = 64
)

// Error codes of the scenario API (see the main catalogue in wire.go).
const (
	// CodeScenarioLimit: a scenario parameter exceeds the server's scan
	// limits (400) — k outside [2, 8], a grid whose point count exceeds
	// 4096, too many coalition members, or topology bounds out of range.
	CodeScenarioLimit = "scenario_limit"
	// CodeUnknownTopology: a topology family name is not registered (400).
	// The valid names are those of scenario.Families.
	CodeUnknownTopology = "unknown_topology"
)

// ScenarioRequest is the body of POST /v1/scenario (and, nested under
// "scenario", of a scenario job submission). Kind selects the scan:
//
//   - "ksybil": agent V of ring Graph splits into K identities over the
//     composition grid Σ c_j = Grid (Grid 0 = default 64);
//   - "coalition": the Members of Graph jointly misreport over the product
//     grid of positive reports w_j·c_j/Grid, c_j ∈ {1..Grid} (default 8);
//   - "topology": generated graph Families (empty = all registered) are
//     scanned for single-agent misreport deviations — Count instances per
//     family (default 4) of N vertices (default 8) with Dist-distributed
//     weights ("uniform", "skewed", "powers", "unit"; "" = uniform), seeded
//     by Seed, each vertex trying reports w_v·c/Grid for c ∈ {1..Grid−1}.
//
// Mechanism selects the allocation backend ("" = default "bd"). Cert,
// topology-only, additionally requests a BD ratio certificate of the scan's
// best ring point (400 cert_limit for other kinds or non-certifiable
// mechanisms).
type ScenarioRequest struct {
	Kind      string    `json:"kind"`
	Mechanism string    `json:"mechanism,omitempty"`
	Graph     WireGraph `json:"graph,omitempty"`
	V         int       `json:"v,omitempty"`
	K         int       `json:"k,omitempty"`
	Grid      int       `json:"grid,omitempty"`
	Members   []int     `json:"members,omitempty"`
	Families  []string  `json:"families,omitempty"`
	Count     int       `json:"count,omitempty"`
	N         int       `json:"n,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Dist      string    `json:"dist,omitempty"`
	Cert      bool      `json:"cert,omitempty"`
}

// WireScenarioKSybilPoint is one evaluated k-way split: identity j holds
// w_v·Comp[j]/grid and U is the combined utility of all identities.
type WireScenarioKSybilPoint struct {
	Comp []int  `json:"comp"`
	U    string `json:"u"`
}

// ScenarioKSybilResult is the kind "ksybil" payload of a scenario answer.
type ScenarioKSybilResult struct {
	K         int                       `json:"k"`
	Grid      int                       `json:"grid"`
	Points    []WireScenarioKSybilPoint `json:"points"`
	BestIndex int                       `json:"best_index"`
	BestComp  []int                     `json:"best_comp"`
	BestU     string                    `json:"best_u"`
	Honest    string                    `json:"honest"`
	Ratio     string                    `json:"ratio"`
	Total     int                       `json:"total"`
}

// WireScenarioCoalitionPoint is one evaluated joint misreport: member j
// reported w_j·Digits[j]/grid and earned Members[j]; Joint is the sum.
type WireScenarioCoalitionPoint struct {
	Digits  []int    `json:"digits"`
	Members []string `json:"members"`
	Joint   string   `json:"joint"`
}

// ScenarioCoalitionResult is the kind "coalition" payload of a scenario
// answer. Honest/BestMember/Gains/MemberRatios are per-member vectors in
// Members order; Gains may be negative (a sacrificial member).
type ScenarioCoalitionResult struct {
	Grid         int                          `json:"grid"`
	Members      []int                        `json:"members"`
	Points       []WireScenarioCoalitionPoint `json:"points"`
	BestIndex    int                          `json:"best_index"`
	BestDigits   []int                        `json:"best_digits"`
	BestJoint    string                       `json:"best_joint"`
	HonestJoint  string                       `json:"honest_joint"`
	JointRatio   string                       `json:"joint_ratio"`
	Honest       []string                     `json:"honest"`
	BestMember   []string                     `json:"best_member"`
	Gains        []string                     `json:"gains"`
	MemberRatios []string                     `json:"member_ratios"`
	Total        int                          `json:"total"`
}

// WireTopologyOutcome is one scanned instance: the worst single-agent
// misreport deviation found over all vertices and grid reports. When
// Unbounded is set, a vertex with zero honest utility gained Best > 0 and
// Ratio is meaningless ("0").
type WireTopologyOutcome struct {
	Family     string `json:"family"`
	Index      int    `json:"index"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	WorstV     int    `json:"worst_v"`
	WorstDigit int    `json:"worst_digit"`
	Honest     string `json:"honest"`
	Best       string `json:"best"`
	Ratio      string `json:"ratio"`
	Unbounded  bool   `json:"unbounded,omitempty"`
}

// WireFamilySummary aggregates one family's outcomes: the worst instance
// (regenerable from its index) and its deviation ratio — or, when
// Unbounded, its raw deviation utility.
type WireFamilySummary struct {
	Family     string `json:"family"`
	Count      int    `json:"count"`
	WorstIndex int    `json:"worst_index"`
	WorstRatio string `json:"worst_ratio"`
	Unbounded  bool   `json:"unbounded,omitempty"`
}

// ScenarioTopologyResult is the kind "topology" payload of a scenario
// answer. Certificate, present only when the request opted in with cert, is
// the BD ratio certificate of the ring family's worst instance at its worst
// vertex, self-checked by the server (cert.Check) before attachment.
type ScenarioTopologyResult struct {
	Families    []string              `json:"families"`
	Count       int                   `json:"count"`
	N           int                   `json:"n"`
	Grid        int                   `json:"grid"`
	Seed        int64                 `json:"seed"`
	Dist        string                `json:"dist"`
	Outcomes    []WireTopologyOutcome `json:"outcomes"`
	Summaries   []WireFamilySummary   `json:"summaries"`
	Total       int                   `json:"total"`
	Certificate *cert.RatioCert       `json:"certificate,omitempty"`
}

// ScenarioResponse is the body of a /v1/scenario answer (and the final
// Result of a durable scenario job): exactly one of the kind payloads is
// set, matching Kind. Mechanism is the resolved backend name.
type ScenarioResponse struct {
	Kind      string                   `json:"kind"`
	Mechanism string                   `json:"mechanism"`
	KSybil    *ScenarioKSybilResult    `json:"ksybil,omitempty"`
	Coalition *ScenarioCoalitionResult `json:"coalition,omitempty"`
	Topology  *ScenarioTopologyResult  `json:"topology,omitempty"`
}

// scenarioJobSpec is the persisted specification of a scenario job: the
// validated request with every default resolved and the point count pinned,
// so progress reporting and resume never depend on re-deriving the layout.
// Mechanism is empty for the default backend, mirroring sweepJobSpec.
type scenarioJobSpec struct {
	Kind      string     `json:"kind"`
	Mechanism string     `json:"mechanism,omitempty"`
	Graph     *WireGraph `json:"graph,omitempty"`
	V         int        `json:"v,omitempty"`
	K         int        `json:"k,omitempty"`
	Grid      int        `json:"grid"`
	Members   []int      `json:"members,omitempty"`
	Families  []string   `json:"families,omitempty"`
	Count     int        `json:"count,omitempty"`
	N         int        `json:"n,omitempty"`
	Seed      int64      `json:"seed,omitempty"`
	Dist      string     `json:"dist,omitempty"`
	Cert      bool       `json:"cert,omitempty"`
	Total     int        `json:"total"`
}

// parseDist maps the wire weight-distribution name ("" = uniform) to the
// generator enum.
func parseDist(name string) (graph.WeightDist, error) {
	switch name {
	case "", "uniform":
		return graph.DistUniform, nil
	case "skewed":
		return graph.DistSkewed, nil
	case "powers":
		return graph.DistPowers, nil
	case "unit":
		return graph.DistUnit, nil
	}
	return 0, fmt.Errorf("unknown weight distribution %q (want uniform, skewed, powers, or unit)", name)
}

// topologyOptions rebuilds the engine options of a topology spec. The
// mechanism may be nil when only instance regeneration is needed.
func (spec *scenarioJobSpec) topologyOptions(m mechanism.Mechanism) (scenario.TopologyOptions, error) {
	dist, err := parseDist(spec.Dist)
	if err != nil {
		return scenario.TopologyOptions{}, err
	}
	return scenario.TopologyOptions{
		Families:  spec.Families,
		Count:     spec.Count,
		N:         spec.N,
		Grid:      spec.Grid,
		Seed:      spec.Seed,
		Dist:      dist,
		Mechanism: m,
	}, nil
}

// validateScenario resolves and validates a scenario request shared by the
// inline endpoint and job submission: kind, mechanism, graph/agent bounds,
// and the scan limits. The returned spec has every default resolved and
// Total pinned; g is the built instance graph (nil for topology scans,
// which generate their own).
func (s *Server) validateScenario(w http.ResponseWriter, req *ScenarioRequest) (scenarioJobSpec, *graph.Graph, mechanism.Mechanism, bool) {
	fail := func() (scenarioJobSpec, *graph.Graph, mechanism.Mechanism, bool) {
		return scenarioJobSpec{}, nil, nil, false
	}
	m, ok := resolveWireMechanism(w, req.Mechanism)
	if !ok {
		return fail()
	}
	// The persisted mechanism is left empty for the default, keeping specs
	// and job addresses of default-backend submissions byte-stable.
	mechName := ""
	if m.Name() != mechanism.Default {
		mechName = m.Name()
	}
	spec := scenarioJobSpec{Kind: req.Kind, Mechanism: mechName}
	if req.Cert {
		if req.Kind != "topology" {
			writeError(w, http.StatusBadRequest, CodeCertLimit,
				"scenario certificates are only available for topology scans (the best ring point)")
			return fail()
		}
		if !mechCertifiable(m) {
			writeError(w, http.StatusBadRequest, CodeCertLimit,
				fmt.Sprintf("mechanism %q cannot build certificates", m.Name()))
			return fail()
		}
		spec.Cert = true
	}
	switch req.Kind {
	case "ksybil":
		g, err := req.Graph.Build()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadGraph, err.Error())
			return fail()
		}
		if !g.IsRing() {
			writeError(w, http.StatusBadRequest, CodeNotRing, "ksybil scenarios require a ring graph")
			return fail()
		}
		if req.V < 0 || req.V >= g.N() {
			writeError(w, http.StatusBadRequest, CodeBadAgent,
				fmt.Sprintf("agent %d out of range [0, %d)", req.V, g.N()))
			return fail()
		}
		k := req.K
		if k == 0 {
			k = 2
		}
		if k < minScenarioK || k > maxScenarioK {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit,
				fmt.Sprintf("k outside [%d, %d]", minScenarioK, maxScenarioK))
			return fail()
		}
		grid := req.Grid
		if grid == 0 {
			grid = 64
		}
		if grid < 1 || grid > 4096 {
			writeError(w, http.StatusBadRequest, CodeBadGrid, "grid outside [1, 4096]")
			return fail()
		}
		total, err := scenario.KSybilTotal(grid, k, maxScenarioPoints)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadGrid, err.Error())
			return fail()
		}
		if total > maxScenarioPoints {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit,
				fmt.Sprintf("k-identity grid exceeds %d points", maxScenarioPoints))
			return fail()
		}
		gCopy := req.Graph
		spec.Graph, spec.V, spec.K, spec.Grid, spec.Total = &gCopy, req.V, k, grid, total
		return spec, g, m, true
	case "coalition":
		g, err := req.Graph.Build()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadGraph, err.Error())
			return fail()
		}
		if len(req.Members) < 2 || len(req.Members) > maxCoalitionMembers {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit,
				fmt.Sprintf("coalition needs between 2 and %d members, got %d", maxCoalitionMembers, len(req.Members)))
			return fail()
		}
		seen := make(map[int]bool, len(req.Members))
		for _, v := range req.Members {
			if v < 0 || v >= g.N() {
				writeError(w, http.StatusBadRequest, CodeBadAgent,
					fmt.Sprintf("member %d out of range [0, %d)", v, g.N()))
				return fail()
			}
			if seen[v] {
				writeError(w, http.StatusBadRequest, CodeBadAgent,
					fmt.Sprintf("member %d listed twice", v))
				return fail()
			}
			seen[v] = true
		}
		grid := req.Grid
		if grid == 0 {
			grid = 8
		}
		if grid < 1 {
			writeError(w, http.StatusBadRequest, CodeBadGrid, "grid must be positive")
			return fail()
		}
		total, err := scenario.CoalitionTotal(grid, len(req.Members), maxScenarioPoints)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit, err.Error())
			return fail()
		}
		gCopy := req.Graph
		spec.Graph, spec.Members, spec.Grid, spec.Total = &gCopy, req.Members, grid, total
		return spec, g, m, true
	case "topology":
		fams := req.Families
		if len(fams) == 0 {
			fams = scenario.Families()
		}
		seen := make(map[string]bool, len(fams))
		for _, f := range fams {
			if !scenario.ValidFamily(f) {
				writeError(w, http.StatusBadRequest, CodeUnknownTopology,
					fmt.Sprintf("unknown topology family %q (want one of %s)", f, strings.Join(scenario.Families(), ", ")))
				return fail()
			}
			if seen[f] {
				writeError(w, http.StatusBadRequest, CodeBadBody,
					fmt.Sprintf("topology family %q listed twice", f))
				return fail()
			}
			seen[f] = true
		}
		if spec.Cert && !seen[scenario.FamilyRing] {
			writeError(w, http.StatusBadRequest, CodeCertLimit,
				"scenario certificates need the ring family in the scan")
			return fail()
		}
		count := req.Count
		if count == 0 {
			count = 4
		}
		if count < 1 || count > maxTopologyCount {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit,
				fmt.Sprintf("topology count outside [1, %d]", maxTopologyCount))
			return fail()
		}
		n := req.N
		if n == 0 {
			n = 8
		}
		if n < 5 || n > maxTopologyN {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit,
				fmt.Sprintf("topology n outside [5, %d]", maxTopologyN))
			return fail()
		}
		grid := req.Grid
		if grid == 0 {
			grid = 8
		}
		if grid < 2 || grid > maxTopologyGrid {
			writeError(w, http.StatusBadRequest, CodeBadGrid,
				fmt.Sprintf("topology grid outside [2, %d]", maxTopologyGrid))
			return fail()
		}
		dist := req.Dist
		if dist == "" {
			dist = "uniform"
		}
		if _, err := parseDist(dist); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadBody, err.Error())
			return fail()
		}
		total := scenario.TopologyTotal(len(fams), count)
		if total > maxScenarioPoints {
			writeError(w, http.StatusBadRequest, CodeScenarioLimit,
				fmt.Sprintf("topology scan exceeds %d instances", maxScenarioPoints))
			return fail()
		}
		spec.Families, spec.Count, spec.N, spec.Grid = fams, count, n, grid
		spec.Seed, spec.Dist, spec.Total = req.Seed, dist, total
		return spec, nil, m, true
	case "":
		writeError(w, http.StatusBadRequest, CodeBadBody, "missing scenario kind (want ksybil, coalition, or topology)")
	default:
		writeError(w, http.StatusBadRequest, CodeBadBody,
			fmt.Sprintf("unknown scenario kind %q (want ksybil, coalition, or topology)", req.Kind))
	}
	return fail()
}

// scenarioJobKey is the content address of one scenario job: the
// mechanism-scoped instance key plus the scan parameters (for graph-bound
// kinds), or the full generator parameters (for topology scans).
func scenarioJobKey(spec *scenarioJobSpec, g *graph.Graph, m mechanism.Mechanism) string {
	switch spec.Kind {
	case "ksybil":
		return fmt.Sprintf("%s|v=%d|k=%d|grid=%d|ksybil", mechKey(g, m), spec.V, spec.K, spec.Grid)
	case "coalition":
		return fmt.Sprintf("%s|members=%s|grid=%d|coalition", mechKey(g, m), joinInts(spec.Members), spec.Grid)
	default: // topology
		key := fmt.Sprintf("f=%s|count=%d|n=%d|grid=%d|seed=%d|dist=%s|cert=%t",
			strings.Join(spec.Families, ","), spec.Count, spec.N, spec.Grid, spec.Seed, spec.Dist, spec.Cert)
		if m.Name() != mechanism.Default {
			key += ";m=" + m.Name()
		}
		return key + "|topology"
	}
}

// joinInts renders an int vector in the comma-joined checkpoint form.
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// splitInts parses the comma-joined checkpoint form back to ints.
func splitInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("corrupt int vector %q: %w", s, err)
		}
		out[i] = n
	}
	return out, nil
}

// Scenario-job checkpoints reuse the sweep Point shape. For ksybil, W1
// carries the comma-joined composition and U the canonical utility; for
// coalition, W1 the digit vector and U a small JSON object with the joint
// and per-member utilities (so a resumed scan reconstructs the best point's
// attribution without re-evaluation); for topology, W1 the decimal global
// instance index and U the WireTopologyOutcome JSON.

func encodeKSybilPoint(p scenario.KSybilPoint) jobs.Point {
	return jobs.Point{W1: joinInts(p.Comp), U: EncodeRat(p.U)}
}

func decodeKSybilPoint(p jobs.Point) (scenario.KSybilPoint, error) {
	comp, err := splitInts(p.W1)
	if err != nil {
		return scenario.KSybilPoint{}, err
	}
	u, err := DecodeRat(p.U)
	if err != nil {
		return scenario.KSybilPoint{}, fmt.Errorf("corrupt utility: %w", err)
	}
	return scenario.KSybilPoint{Comp: comp, U: u}, nil
}

// wireCoalitionCkpt is the U payload of a coalition checkpoint point.
type wireCoalitionCkpt struct {
	Joint   string   `json:"joint"`
	Members []string `json:"members"`
}

func encodeCoalitionPoint(p scenario.CoalitionPoint) (jobs.Point, error) {
	raw, err := json.Marshal(wireCoalitionCkpt{Joint: EncodeRat(p.Joint), Members: encodeRats(p.Members)})
	if err != nil {
		return jobs.Point{}, err
	}
	return jobs.Point{W1: joinInts(p.Digits), U: string(raw)}, nil
}

func decodeCoalitionPoint(p jobs.Point) (scenario.CoalitionPoint, error) {
	digits, err := splitInts(p.W1)
	if err != nil {
		return scenario.CoalitionPoint{}, err
	}
	var ck wireCoalitionCkpt
	if err := json.Unmarshal([]byte(p.U), &ck); err != nil {
		return scenario.CoalitionPoint{}, fmt.Errorf("corrupt coalition point: %w", err)
	}
	joint, err := DecodeRat(ck.Joint)
	if err != nil {
		return scenario.CoalitionPoint{}, fmt.Errorf("corrupt joint utility: %w", err)
	}
	members, err := decodeRats("members", ck.Members)
	if err != nil {
		return scenario.CoalitionPoint{}, err
	}
	return scenario.CoalitionPoint{Digits: digits, Members: members, Joint: joint}, nil
}

func wireTopologyOutcome(out scenario.TopologyOutcome) WireTopologyOutcome {
	return WireTopologyOutcome{
		Family:     out.Family,
		Index:      out.Index,
		N:          out.N,
		M:          out.M,
		WorstV:     out.WorstV,
		WorstDigit: out.WorstDigit,
		Honest:     EncodeRat(out.Honest),
		Best:       EncodeRat(out.Best),
		Ratio:      EncodeRat(out.Ratio),
		Unbounded:  out.Unbounded,
	}
}

func encodeTopologyPoint(i int, out scenario.TopologyOutcome) (jobs.Point, error) {
	raw, err := json.Marshal(wireTopologyOutcome(out))
	if err != nil {
		return jobs.Point{}, err
	}
	return jobs.Point{W1: strconv.Itoa(i), U: string(raw)}, nil
}

func decodeTopologyPoint(p jobs.Point) (scenario.TopologyOutcome, error) {
	var wo WireTopologyOutcome
	if err := json.Unmarshal([]byte(p.U), &wo); err != nil {
		return scenario.TopologyOutcome{}, fmt.Errorf("corrupt topology outcome %s: %w", p.W1, err)
	}
	out := scenario.TopologyOutcome{
		Family: wo.Family, Index: wo.Index, N: wo.N, M: wo.M,
		WorstV: wo.WorstV, WorstDigit: wo.WorstDigit, Unbounded: wo.Unbounded,
	}
	var err error
	for _, f := range []struct {
		s   string
		dst *numeric.Rat
	}{{wo.Honest, &out.Honest}, {wo.Best, &out.Best}, {wo.Ratio, &out.Ratio}} {
		if *f.dst, err = DecodeRat(f.s); err != nil {
			return scenario.TopologyOutcome{}, fmt.Errorf("corrupt topology outcome %s: %w", p.W1, err)
		}
	}
	return out, nil
}

// wireKSybilResult folds a full point set into the kind "ksybil" payload:
// earliest-maximum best and the shared ratio conventions, identical to the
// engine's own fold — which is what makes a resumed job's combined
// prefix+tail byte-identical to an uninterrupted run.
func wireKSybilResult(spec *scenarioJobSpec, points []scenario.KSybilPoint, honest numeric.Rat) (*ScenarioKSybilResult, error) {
	out := &ScenarioKSybilResult{
		K: spec.K, Grid: spec.Grid, Total: spec.Total,
		Honest: EncodeRat(honest),
		Points: make([]WireScenarioKSybilPoint, len(points)),
	}
	var best numeric.Rat
	var bestComp []int
	for i, p := range points {
		out.Points[i] = WireScenarioKSybilPoint{Comp: p.Comp, U: EncodeRat(p.U)}
		if i == 0 || best.Less(p.U) {
			best, bestComp, out.BestIndex = p.U, p.Comp, i
		}
	}
	out.BestComp, out.BestU = bestComp, EncodeRat(best)
	var ratio numeric.Rat
	switch {
	case honest.Sign() > 0:
		ratio = best.Div(honest)
	case best.Sign() > 0:
		return nil, fmt.Errorf("scenario: positive attack utility %v from zero honest utility", best)
	default:
		ratio = numeric.One
	}
	out.Ratio = EncodeRat(ratio)
	return out, nil
}

// wireCoalitionResult folds a full point set into the kind "coalition"
// payload, recomputing the best-point attribution from the checkpointed
// per-member utilities.
func wireCoalitionResult(spec *scenarioJobSpec, points []scenario.CoalitionPoint, honest []numeric.Rat) (*ScenarioCoalitionResult, error) {
	honestJoint := numeric.Sum(honest)
	out := &ScenarioCoalitionResult{
		Grid: spec.Grid, Members: spec.Members, Total: spec.Total,
		HonestJoint: EncodeRat(honestJoint),
		Honest:      encodeRats(honest),
		Points:      make([]WireScenarioCoalitionPoint, len(points)),
	}
	var bestJoint numeric.Rat
	var bestPoint scenario.CoalitionPoint
	for i, p := range points {
		out.Points[i] = WireScenarioCoalitionPoint{Digits: p.Digits, Members: encodeRats(p.Members), Joint: EncodeRat(p.Joint)}
		if i == 0 || bestJoint.Less(p.Joint) {
			bestJoint, bestPoint, out.BestIndex = p.Joint, p, i
		}
	}
	out.BestDigits, out.BestJoint = bestPoint.Digits, EncodeRat(bestJoint)
	if len(points) > 0 {
		gains := make([]numeric.Rat, len(honest))
		ratios := make([]numeric.Rat, len(honest))
		for j := range honest {
			gains[j] = bestPoint.Members[j].Sub(honest[j])
			if honest[j].Sign() > 0 {
				ratios[j] = bestPoint.Members[j].Div(honest[j])
			} else {
				ratios[j] = numeric.One
			}
		}
		out.BestMember = encodeRats(bestPoint.Members)
		out.Gains = encodeRats(gains)
		out.MemberRatios = encodeRats(ratios)
	}
	var jr numeric.Rat
	switch {
	case honestJoint.Sign() > 0:
		jr = bestJoint.Div(honestJoint)
	case bestJoint.Sign() > 0:
		return nil, fmt.Errorf("scenario: positive coalition utility %v from zero honest utility", bestJoint)
	default:
		jr = numeric.One
	}
	out.JointRatio = EncodeRat(jr)
	return out, nil
}

// wireTopologyResult folds a full outcome set into the kind "topology"
// payload, recomputing the per-family summaries from scratch.
func wireTopologyResult(spec *scenarioJobSpec, outcomes []scenario.TopologyOutcome) *ScenarioTopologyResult {
	out := &ScenarioTopologyResult{
		Families: spec.Families, Count: spec.Count, N: spec.N,
		Grid: spec.Grid, Seed: spec.Seed, Dist: spec.Dist, Total: spec.Total,
		Outcomes: make([]WireTopologyOutcome, len(outcomes)),
	}
	for i, o := range outcomes {
		out.Outcomes[i] = wireTopologyOutcome(o)
	}
	for _, s := range scenario.SummarizeFamilies(spec.Families, outcomes) {
		out.Summaries = append(out.Summaries, WireFamilySummary{
			Family: s.Family, Count: s.Count, WorstIndex: s.WorstIndex,
			WorstRatio: EncodeRat(s.WorstRatio), Unbounded: s.Unbounded,
		})
	}
	return out
}

// certifyTopologyBest builds the BD ratio certificate of a topology scan's
// best ring point: the ring family's worst bounded instance is regenerated
// exactly (TopologyInstance), its worst vertex is optimized on the scan
// grid, and the certificate is self-checked before attachment.
func (s *Server) certifyTopologyBest(ctx context.Context, spec *scenarioJobSpec, outcomes []scenario.TopologyOutcome) (*cert.RatioCert, error) {
	var worst *scenario.TopologyOutcome
	for i := range outcomes {
		o := &outcomes[i]
		if o.Family != scenario.FamilyRing || o.Unbounded {
			continue
		}
		if worst == nil || worst.Ratio.Less(o.Ratio) {
			worst = o
		}
	}
	if worst == nil {
		return nil, fmt.Errorf("scan covered no certifiable ring instance")
	}
	opts, err := spec.topologyOptions(nil)
	if err != nil {
		return nil, err
	}
	g, _, err := scenario.TopologyInstance(opts, worst.Index)
	if err != nil {
		return nil, err
	}
	v := worst.WorstV
	if v < 0 {
		v = 0
	}
	in, err := core.NewInstanceCtx(ctx, g, v)
	if err != nil {
		return nil, err
	}
	opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: spec.Grid})
	if err != nil {
		return nil, err
	}
	rc, err := build.Ratio(ctx, in, opt)
	if err != nil {
		return nil, err
	}
	if err := s.certify(rc); err != nil {
		return nil, err
	}
	return rc, nil
}

// runScenario is the shared execution core of the inline endpoint (start 0,
// no prefix, no checkpoints) and the durable job runner (resume from start
// with the checkpointed prefix, checkpointing every completed point through
// ckpt). Every quantity is exact and serialized canonically, and the final
// fold always runs over the combined prefix+tail set, so both paths produce
// byte-identical bodies.
func (s *Server) runScenario(ctx context.Context, spec *scenarioJobSpec, g *graph.Graph, m mechanism.Mechanism, start int, prefix []jobs.Point, ckpt jobs.CheckpointFunc) (*ScenarioResponse, error) {
	resp := &ScenarioResponse{Kind: spec.Kind, Mechanism: m.Name()}
	switch spec.Kind {
	case "ksybil":
		pts := make([]scenario.KSybilPoint, 0, spec.Total)
		for i, p := range prefix {
			kp, err := decodeKSybilPoint(p)
			if err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", i, err)
			}
			pts = append(pts, kp)
		}
		kopts := scenario.KSybilOptions{K: spec.K, Grid: spec.Grid, Mechanism: m, Start: start}
		if _, native := m.(mechanism.RingSweeper); native {
			// Native sweepers share the cached core.Instance with the inline
			// sweep/ratio endpoints (memoized pair evaluations).
			entry, hit := s.cache.entryFor(mechKey(g, m), g)
			s.metrics.cacheLookup("/v1/scenario#run", hit)
			in, err := entry.instance(ctx, spec.V)
			if err != nil {
				return nil, err
			}
			kopts.Instance = in
		}
		if ckpt != nil {
			kopts.OnPoint = func(i int, p scenario.KSybilPoint) error {
				return ckpt(i, []jobs.Point{encodeKSybilPoint(p)})
			}
		}
		res, err := scenario.KSybil(ctx, g, spec.V, kopts)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, ctx.Err()
		}
		pts = append(pts, res.Points...)
		if resp.KSybil, err = wireKSybilResult(spec, pts, res.Honest); err != nil {
			return nil, err
		}
	case "coalition":
		pts := make([]scenario.CoalitionPoint, 0, spec.Total)
		for i, p := range prefix {
			cp, err := decodeCoalitionPoint(p)
			if err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", i, err)
			}
			pts = append(pts, cp)
		}
		copts := scenario.CoalitionOptions{Members: spec.Members, Grid: spec.Grid, Mechanism: m, Start: start}
		if ckpt != nil {
			copts.OnPoint = func(i int, p scenario.CoalitionPoint) error {
				pt, err := encodeCoalitionPoint(p)
				if err != nil {
					return err
				}
				return ckpt(i, []jobs.Point{pt})
			}
		}
		res, err := scenario.Coalition(ctx, g, copts)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, ctx.Err()
		}
		pts = append(pts, res.Points...)
		if resp.Coalition, err = wireCoalitionResult(spec, pts, res.Honest); err != nil {
			return nil, err
		}
	case "topology":
		outs := make([]scenario.TopologyOutcome, 0, spec.Total)
		for i, p := range prefix {
			out, err := decodeTopologyPoint(p)
			if err != nil {
				return nil, fmt.Errorf("checkpoint %d: %w", i, err)
			}
			outs = append(outs, out)
		}
		topts, err := spec.topologyOptions(m)
		if err != nil {
			return nil, fmt.Errorf("job spec dist: %w", err)
		}
		topts.Start = start
		if ckpt != nil {
			topts.OnOutcome = func(i int, out scenario.TopologyOutcome) error {
				pt, err := encodeTopologyPoint(i, out)
				if err != nil {
					return err
				}
				return ckpt(i, []jobs.Point{pt})
			}
		}
		res, err := scenario.Topology(ctx, topts)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, ctx.Err()
		}
		outs = append(outs, res.Outcomes...)
		tr := wireTopologyResult(spec, outs)
		if spec.Cert {
			rc, err := s.certifyTopologyBest(ctx, spec, outs)
			if err != nil {
				return nil, fmt.Errorf("scenario certificate: %w", err)
			}
			tr.Certificate = rc
		}
		resp.Topology = tr
	default:
		return nil, fmt.Errorf("corrupt scenario spec: unknown kind %q", spec.Kind)
	}
	return resp, nil
}

// handleScenario is POST /v1/scenario: the inline strategic-manipulation
// scan. For long grids, submit a kind ksybil/coalition/topology job instead
// — same validation, same final body, durable across restarts.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if !decodeBody(w, r, &req) {
		return
	}
	spec, g, m, ok := s.validateScenario(w, &req)
	if !ok {
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	cctx, csp := obs.Start(ctx, "server.compute")
	resp, err := s.runScenario(cctx, &spec, g, m, 0, nil, nil)
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	writeResult(w, r, resp)
}

// submitScenarioJob validates and enqueues a kind ksybil/coalition/topology
// job. The scenario parameters ride in the Scenario field of the job
// submission; its kind, when set, must agree with the job kind.
func (s *Server) submitScenarioJob(w http.ResponseWriter, r *http.Request, req *JobSubmitRequest) {
	var sr ScenarioRequest
	if req.Scenario != nil {
		sr = *req.Scenario
	}
	if sr.Kind == "" {
		sr.Kind = req.Kind
	}
	if sr.Kind != req.Kind {
		writeError(w, http.StatusBadRequest, CodeBadBody,
			fmt.Sprintf("job kind %q conflicts with scenario kind %q", req.Kind, sr.Kind))
		return
	}
	spec, g, m, ok := s.validateScenario(w, &sr)
	if !ok {
		return
	}
	seed, ok := seedPoints(w, req.Checkpoint, spec.Total)
	if !ok {
		return
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	rec, enqueued, err := s.jobSched.Submit(r.Context(), jobs.Submission{
		Key:      scenarioJobKey(&spec, g, m),
		Kind:     spec.Kind,
		Spec:     raw,
		Priority: req.Priority,
		Seed:     seed,
	})
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	status := http.StatusAccepted
	if !enqueued {
		status = http.StatusOK
	}
	writeJSON(w, status, JobSubmitResponse{Job: wireJob(rec, false), Deduped: !enqueued})
}

// runScenarioJob executes one scenario job of any kind, resuming from
// rec.NextIndex with the checkpointed prefix and checkpointing every
// completed point. The final Result is the ScenarioResponse JSON,
// bit-identical to the inline /v1/scenario answer of the same request.
func (s *Server) runScenarioJob(ctx context.Context, rec *jobs.Record, ckpt jobs.CheckpointFunc) ([]byte, error) {
	var spec scenarioJobSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return nil, fmt.Errorf("corrupt job spec: %w", err)
	}
	m, err := mechanism.Get(spec.Mechanism)
	if err != nil {
		return nil, fmt.Errorf("job spec mechanism: %w", err)
	}
	if s.collector != nil {
		tr := s.collector.NewTrace("jobs.run")
		ctx = tr.Context(ctx)
		defer tr.Finish()
	}
	ctx, span := obs.Start(ctx, "jobs.scenario")
	defer span.End()
	if span != nil {
		span.SetAttr("job", rec.ID)
		span.SetAttr("kind", spec.Kind)
		span.SetAttr("total", strconv.Itoa(spec.Total))
		if rec.NextIndex > 0 {
			span.SetAttr("resume_from", strconv.Itoa(rec.NextIndex))
		}
	}
	var g *graph.Graph
	if spec.Graph != nil {
		if g, err = spec.Graph.Build(); err != nil {
			return nil, fmt.Errorf("job spec graph: %w", err)
		}
	}
	resp, err := s.runScenario(ctx, &spec, g, m, rec.NextIndex, rec.Points, ckpt)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

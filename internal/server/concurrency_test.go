package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestConcurrentMixedEndpoints hammers one cached server with mixed
// endpoint traffic from many goroutines and asserts every 200 answer is
// byte-identical to the cold (cache-disabled) answer for the same request.
// Run under -race this is the shared-state torture test: all goroutines
// funnel into the same cache entries, solver instances and batcher.
func TestConcurrentMixedEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var gs []*graph.Graph
	for i := 0; i < 4; i++ {
		gs = append(gs, graph.RandomRing(rng, 5+i, graph.WeightDist(i%4)))
	}

	type request struct {
		path string
		body any
	}
	var reqs []request
	for gi, g := range gs {
		wg := wireOf(g)
		reqs = append(reqs,
			request{"/v1/decompose", DecomposeRequest{Graph: wg}},
			request{"/v1/utilities", UtilitiesRequest{Graph: wg}},
			request{"/v1/allocate", AllocateRequest{Graph: wg}},
			request{"/v1/ratio", RatioRequest{Graph: wg, V: gi % g.N(), Grid: 8}},
			request{"/v1/sweep", SweepRequest{Graph: wg, V: gi % g.N(), Grid: 8}},
		)
	}

	// Cold truth: every request answered by a cache-disabled server.
	_, cold := newTestServer(t, Config{CacheSize: -1})
	want := make([][]byte, len(reqs))
	for i, rq := range reqs {
		status, raw := postJSON(t, cold.URL, rq.path, rq.body)
		if status != http.StatusOK {
			t.Fatalf("cold %s: status %d: %s", rq.path, status, raw)
		}
		want[i] = raw
	}

	_, warm := newTestServer(t, Config{PoolSize: 4, BatchWindow: time.Millisecond, MaxQueueDepth: -1})
	const workers = 24
	const iters = 12
	var wgrp sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wgrp.Add(1)
		go func(seed int64) {
			defer wgrp.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < iters; it++ {
				i := rng.Intn(len(reqs))
				blob, _ := json.Marshal(reqs[i].body)
				resp, err := http.Post(warm.URL+reqs[i].path, "application/json", bytes.NewReader(blob))
				if err != nil {
					errCh <- fmt.Errorf("%s: %v", reqs[i].path, err)
					return
				}
				raw := make([]byte, 0, len(want[i]))
				buf := make([]byte, 4096)
				for {
					n, err := resp.Body.Read(buf)
					raw = append(raw, buf[:n]...)
					if err != nil {
						break
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d: %s", reqs[i].path, resp.StatusCode, raw)
					return
				}
				if !bytes.Equal(raw, want[i]) {
					errCh <- fmt.Errorf("%s: warm answer differs from cold:\nwarm: %s\ncold: %s", reqs[i].path, raw, want[i])
					return
				}
			}
		}(int64(w + 1))
	}
	wgrp.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestCancellationMidDinkelbach cancels a ratio request partway through a
// long optimization on a shared cache entry, then re-asks for the full
// answer on the same server and checks it against a fresh in-process
// computation — proving a canceled Dinkelbach run leaves no partial state
// behind in the entry's core.Instance or SplitSolver caches.
func TestCancellationMidDinkelbach(t *testing.T) {
	if testing.Short() {
		t.Skip("long optimization")
	}
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomRing(rng, 80, graph.DistUniform)
	const v, grid = 0, 16
	wg := wireOf(g)

	srv, ts := newTestServer(t, Config{})
	blob, _ := json.Marshal(RatioRequest{Graph: wg, V: v, Grid: grid})

	// Fire several requests that get canceled at staggered points of the
	// computation. All hit the same cache entry / instance.
	for _, after := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), after)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/ratio", bytes.NewReader(blob))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			// The computation beat the deadline; that's fine too.
			resp.Body.Close()
		}
		cancel()
	}

	// Now the real request on the same (possibly partially warmed) entry.
	var got RatioResponse
	mustPost(t, ts.URL, "/v1/ratio", RatioRequest{Graph: wg, V: v, Grid: grid}, &got)

	in, err := core.NewInstance(g, v)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := in.Optimize(core.OptimizeOptions{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if got.BestU != EncodeRat(opt.BestU) || got.BestW1 != EncodeRat(opt.BestW1) || got.Ratio != EncodeRat(opt.Ratio) {
		t.Fatalf("after cancellations: (%s at %s, ratio %s), want (%s at %s, ratio %s)",
			got.BestU, got.BestW1, got.Ratio, EncodeRat(opt.BestU), EncodeRat(opt.BestW1), EncodeRat(opt.Ratio))
	}
	if srv.cache.len() == 0 {
		t.Fatal("expected the instance to be resident in the cache")
	}
}

// TestBatchingJoinsConcurrentRatios checks that simultaneous identical
// ratio requests coalesce into fewer optimizer runs and all get the same
// answer.
func TestBatchingJoinsConcurrentRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomRing(rng, 40, graph.DistUniform)
	wg := wireOf(g)
	srv, ts := newTestServer(t, Config{BatchWindow: 20 * time.Millisecond, MaxQueueDepth: -1})

	const callers = 8
	bodies := make([][]byte, callers)
	var wgrp sync.WaitGroup
	for c := 0; c < callers; c++ {
		wgrp.Add(1)
		go func(c int) {
			defer wgrp.Done()
			status, raw := postJSON(t, ts.URL, "/v1/ratio", RatioRequest{Graph: wg, V: 1, Grid: 8})
			if status == http.StatusOK {
				bodies[c] = raw
			}
		}(c)
	}
	wgrp.Wait()
	var first []byte
	for c, b := range bodies {
		if b == nil {
			t.Fatalf("caller %d failed", c)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("caller %d got a different answer:\n%s\n%s", c, first, b)
		}
	}
	runs, joins := srv.batch.runs.Load(), srv.batch.joins.Load()
	if runs+joins != callers {
		t.Fatalf("runs %d + joins %d != %d callers", runs, joins, callers)
	}
	if joins == 0 {
		t.Logf("no callers joined a batch (timing-dependent); runs=%d", runs)
	}
}

package core

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/numeric"
)

// InitialForm classifies the decomposition of the honest-split path
// P_v(w1⁰, w2⁰) per Lemma 14 (manipulator in C class) and Lemma 20
// (manipulator in B class).
type InitialForm int

const (
	// FormUnknown marks a configuration outside the lemmas' catalog (its
	// appearance on a valid ring instance indicates a bug).
	FormUnknown InitialForm = iota
	// FormC1: single pair, v¹ ∈ B₁, v² ∈ C₁, alternating classes.
	FormC1
	// FormC2: v¹ ∈ B_j with w1⁰ = 0 and v² ∈ C_i.
	FormC2
	// FormC3: both identities in C class, α_{v¹} ≥ α_{v²}.
	FormC3
	// FormD1: both identities in B class, α_{v¹} ≤ α_{v²}.
	FormD1
)

// String names the form as in the paper.
func (f InitialForm) String() string {
	switch f {
	case FormC1:
		return "Case C-1"
	case FormC2:
		return "Case C-2"
	case FormC3:
		return "Case C-3"
	case FormD1:
		return "Case D-1"
	}
	return "unknown"
}

// Check is one verified assertion of the stage analysis.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// StageReport reproduces the paper's two-stage proof on a concrete instance:
// the walk from the honest split P_v(w1⁰, w2⁰) to the optimal split
// P_v(w1*, w2*), decomposed into the stages of Sections III-C (manipulator
// in C class) or III-D (B class), with every per-stage utility delta
// computed exactly and checked against the lemma that bounds it.
type StageReport struct {
	// VClass is the manipulator's class on the ring (Both ↦ C, the paper's
	// convention).
	VClass bottleneck.Class
	// Form is the Lemma 14 / Lemma 20 classification of the initial path.
	Form InitialForm
	// Flipped records that the identities were relabeled so that v¹ is the
	// growing side (the paper's w.l.o.g. w1* > w1⁰).
	Flipped bool
	// Adjusted reports that the Adjusting Technique replaced the initial
	// split, sliding z units from v² to v¹ along the same-pair plateau.
	Adjusted bool
	AdjustZ  numeric.Rat
	// W1Init/W2Init are the (possibly adjusted) initial weights; W1Star and
	// W2Star the optimal ones. All are in the oriented frame.
	W1Init, W2Init numeric.Rat
	W1Star, W2Star numeric.Rat
	// UInit and UStar are total utilities at those splits; HonestU is U_v.
	UInit, UStar, HonestU numeric.Rat
	// Delta[s][i] is identity i's utility change at stage s (both oriented).
	Delta [2][2]numeric.Rat
	// Checks lists each lemma assertion with its verdict.
	Checks []Check
	// BoundHolds is the Theorem 8 conclusion U* ≤ 2·U_v.
	BoundHolds bool
}

// oriented evaluates P in the (possibly flipped) frame: a is always the
// growing identity's weight.
func (in *Instance) oriented(flipped bool, a, b numeric.Rat) (*PathEval, numeric.Rat, numeric.Rat, error) {
	var ev *PathEval
	var err error
	if flipped {
		ev, err = in.EvalPair(b, a)
		if err != nil {
			return nil, numeric.Rat{}, numeric.Rat{}, err
		}
		return ev, ev.U2, ev.U1, nil
	}
	ev, err = in.EvalPair(a, b)
	if err != nil {
		return nil, numeric.Rat{}, numeric.Rat{}, err
	}
	return ev, ev.U1, ev.U2, nil
}

// orientedIDs returns the path indices of (v¹, v²) in the oriented frame.
func orientedIDs(ev *PathEval, flipped bool) (int, int) {
	if flipped {
		return ev.V2, ev.V1
	}
	return ev.V1, ev.V2
}

// AnalyzeStages reproduces the proof's stage decomposition for the optimal
// split w1star (as found by Optimize, or any split of interest).
func (in *Instance) AnalyzeStages(w1star numeric.Rat) (*StageReport, error) {
	if w1star.Sign() < 0 || in.W().Less(w1star) {
		return nil, fmt.Errorf("core: w1* = %v outside [0, %v]", w1star, in.W())
	}
	rep := &StageReport{VClass: in.VClass(), HonestU: in.HonestU}
	w2star := in.W().Sub(w1star)

	// Orient so that the first identity grows: w1* ≥ w1⁰.
	rep.Flipped = w1star.Less(in.W1Zero)
	if rep.Flipped {
		rep.W1Init, rep.W2Init = in.W2Zero, in.W1Zero
		rep.W1Star, rep.W2Star = w2star, w1star
	} else {
		rep.W1Init, rep.W2Init = in.W1Zero, in.W2Zero
		rep.W1Star, rep.W2Star = w1star, w2star
	}

	evInit, _, _, err := in.oriented(rep.Flipped, rep.W1Init, rep.W2Init)
	if err != nil {
		return nil, err
	}
	rep.Form = classifyInitialForm(in, evInit, rep.Flipped, rep.W1Init, rep.W2Init)
	rep.addCheck("Lemma 9: honest split is utility-neutral",
		evInit.U.Equal(in.HonestU),
		fmt.Sprintf("U(w1⁰,w2⁰) = %v, U_v = %v", evInit.U, in.HonestU))

	// Adjusting Technique (Cases C-3 / D-1 with both identities in one
	// pair): slide z from v² to v¹ while the decomposition structure is
	// unchanged; utility stays U_v on the plateau.
	v1i, v2i := orientedIDs(evInit, rep.Flipped)
	if (rep.Form == FormC3 || rep.Form == FormD1) &&
		evInit.Dec.PairIndexOf(v1i) == evInit.Dec.PairIndexOf(v2i) &&
		rep.W1Init.Less(rep.W1Star) {
		z, err := in.adjustPlateau(rep.Flipped, rep.W1Init, rep.W2Init, rep.W1Star.Sub(rep.W1Init), evInit.Signature)
		if err != nil {
			return nil, err
		}
		if z.Sign() > 0 {
			rep.Adjusted = true
			rep.AdjustZ = z
			rep.W1Init = rep.W1Init.Add(z)
			rep.W2Init = rep.W2Init.Sub(z)
			evInit, _, _, err = in.oriented(rep.Flipped, rep.W1Init, rep.W2Init)
			if err != nil {
				return nil, err
			}
			rep.addCheck("Adjusting Technique preserves utility",
				evInit.U.Equal(in.HonestU),
				fmt.Sprintf("U(w1⁰+z, w2⁰−z) = %v with z = %v", evInit.U, z))
		}
	}
	rep.UInit = evInit.U

	// Lemmas 15 / 21: when both identities still share a pair at the
	// (adjusted) initial split and the walk moves, an infinitesimal step
	// splits that pair so that the moving-away identity's α is unchanged
	// and the other identity lands strictly below (C class) or above
	// (B class). Verified with a shrinking exact ε.
	v1a, v2a := orientedIDs(evInit, rep.Flipped)
	samePairStrict := evInit.Dec.PairIndexOf(v1a) == evInit.Dec.PairIndexOf(v2a) &&
		evInit.Dec.ClassOf(v1a) != bottleneck.ClassBoth // α=1 Both-Both is Case C-1's shape, not Lemma 15's
	if samePairStrict && rep.W1Init.Less(rep.W1Star) {
		switch rep.Form {
		case FormC3:
			pass, detail, err := in.verifyEpsilonSplit(rep.Flipped, rep.W1Init, rep.W2Init, evInit, false)
			if err != nil {
				return nil, err
			}
			rep.addCheck("Lemma 15: ε-split keeps α_{v¹}, drops α_{v²}", pass, detail)
		case FormD1:
			pass, detail, err := in.verifyEpsilonSplit(rep.Flipped, rep.W1Init, rep.W2Init, evInit, true)
			if err != nil {
				return nil, err
			}
			rep.addCheck("Lemma 21: ε-split keeps α_{v²}, drops α_{v¹}", pass, detail)
		}
	}

	// Stage walk. For C class: first shrink w2 (Stage C-1), then grow w1
	// (Stage C-2). For B class: first grow w1 (Stage D-1), then shrink w2
	// (Stage D-2).
	var midA, midB numeric.Rat // the intermediate configuration
	if rep.VClass.IsC() {
		midA, midB = rep.W1Init, rep.W2Star
	} else {
		midA, midB = rep.W1Star, rep.W2Init
	}
	_, u1Init, u2Init, err := in.oriented(rep.Flipped, rep.W1Init, rep.W2Init)
	if err != nil {
		return nil, err
	}
	evMid, u1Mid, u2Mid, err := in.oriented(rep.Flipped, midA, midB)
	if err != nil {
		return nil, err
	}
	evStar, u1Star, u2Star, err := in.oriented(rep.Flipped, rep.W1Star, rep.W2Star)
	if err != nil {
		return nil, err
	}
	rep.UStar = evStar.U
	rep.Delta[0][0] = u1Mid.Sub(u1Init)
	rep.Delta[0][1] = u2Mid.Sub(u2Init)
	rep.Delta[1][0] = u1Star.Sub(u1Mid)
	rep.Delta[1][1] = u2Star.Sub(u2Mid)

	if rep.VClass.IsC() {
		rep.addCheck("Lemma 16: δ¹_{v¹} ≤ 0", rep.Delta[0][0].Sign() <= 0, rep.Delta[0][0].String())
		rep.addCheck("Lemma 16 / Thm 10: δ¹_{v²} ≤ 0", rep.Delta[0][1].Sign() <= 0, rep.Delta[0][1].String())
		v1star, _ := orientedIDs(evStar, rep.Flipped)
		if evStar.Dec.ClassOf(v1star).IsC() && evStar.Dec.ClassOf(v1star) != bottleneck.ClassBoth {
			rep.addCheck("Lemma 18: δ²_{v¹} ≤ U_v", rep.Delta[1][0].LessEq(in.HonestU), rep.Delta[1][0].String())
			rep.addCheck("Lemma 18: δ²_{v²} ≤ 0", rep.Delta[1][1].Sign() <= 0, rep.Delta[1][1].String())
		} else {
			rep.addCheck("Lemma 19: U(w1*,w2*) ≤ 2U_v (v¹ ends B class)",
				rep.UStar.LessEq(in.HonestU.MulInt(2)), rep.UStar.String())
		}
	} else {
		rep.addCheck("Lemma 22: Δ¹_{v¹} ≤ U_v", rep.Delta[0][0].LessEq(in.HonestU), rep.Delta[0][0].String())
		rep.addCheck("Lemma 22: Δ¹_{v²} ≤ 0", rep.Delta[0][1].Sign() <= 0, rep.Delta[0][1].String())
		rep.addCheck("Lemma 24: Δ²_{v¹} ≤ 0", rep.Delta[1][0].Sign() <= 0, rep.Delta[1][0].String())
		rep.addCheck("Lemma 24: Δ²_{v²} ≤ 0", rep.Delta[1][1].Sign() <= 0, rep.Delta[1][1].String())
	}
	_ = evMid

	// Telescoping identity: U* − U_init = Σ deltas (exact bookkeeping).
	sum := rep.Delta[0][0].Add(rep.Delta[0][1]).Add(rep.Delta[1][0]).Add(rep.Delta[1][1])
	rep.addCheck("stage deltas telescope", rep.UStar.Sub(rep.UInit).Equal(sum), sum.String())

	rep.BoundHolds = rep.UStar.LessEq(in.HonestU.MulInt(2))
	rep.addCheck("Theorem 8: U(w1*,w2*) ≤ 2U_v", rep.BoundHolds,
		fmt.Sprintf("U* = %v, 2U_v = %v", rep.UStar, in.HonestU.MulInt(2)))
	return rep, nil
}

func (r *StageReport) addCheck(name string, pass bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: detail})
}

// AllChecksPass reports whether every recorded assertion held.
func (r *StageReport) AllChecksPass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// classifyInitialForm applies Lemmas 14 and 20 to the oriented initial path.
// The paper states Case C-2 with the zero-weight identity labeled v¹; our
// orientation is fixed by the growth direction instead (v¹ grows), so the
// mirrored pattern — zero weight and B class on the v² side — is the same
// case.
func classifyInitialForm(in *Instance, evInit *PathEval, flipped bool, w1Init, w2Init numeric.Rat) InitialForm {
	v1, v2 := orientedIDs(evInit, flipped)
	c1 := evInit.Dec.ClassOf(v1)
	c2 := evInit.Dec.ClassOf(v2)
	if in.VClass().IsC() {
		switch {
		case len(evInit.Dec.Pairs) == 1 && c1.IsB() && c2.IsC():
			return FormC1
		case len(evInit.Dec.Pairs) == 1 && c2.IsB() && c1.IsC():
			return FormC1
		case w1Init.IsZero() && c1.IsB() && c2.IsC():
			return FormC2
		case w2Init.IsZero() && c2.IsB() && c1.IsC():
			return FormC2
		case c1.IsC() && c2.IsC():
			return FormC3
		}
		return FormUnknown
	}
	if c1.IsB() && c2.IsB() {
		return FormD1
	}
	return FormUnknown
}

// verifyEpsilonSplit checks Lemma 15 (growD1 = false, manipulator C class:
// decrease w2 by ε) or Lemma 21 (growD1 = true, B class: increase w1 by ε)
// against exact evaluations, halving ε until the perturbation is small
// enough to cross no further breakpoint.
func (in *Instance) verifyEpsilonSplit(flipped bool, w1, w2 numeric.Rat, evInit *PathEval, growD1 bool) (bool, string, error) {
	v1i, v2i := orientedIDs(evInit, flipped)
	alpha1Init := evInit.Dec.AlphaOf(v1i)
	alpha2Init := evInit.Dec.AlphaOf(v2i)
	eps := w2.DivInt(16)
	if growD1 {
		eps = w1.Max(numeric.One).DivInt(16)
	}
	for it := 0; it < 60 && eps.Sign() > 0; it++ {
		var ev *PathEval
		var err error
		if growD1 {
			ev, _, _, err = in.oriented(flipped, w1.Add(eps), w2)
		} else {
			ev, _, _, err = in.oriented(flipped, w1, w2.Sub(eps))
		}
		if err != nil {
			return false, "", err
		}
		v1, v2 := orientedIDs(ev, flipped)
		if ev.Dec.PairIndexOf(v1) != ev.Dec.PairIndexOf(v2) {
			a1, a2 := ev.Dec.AlphaOf(v1), ev.Dec.AlphaOf(v2)
			if growD1 {
				// Lemma 21: α_{v¹}(ε) < α_{v²}(ε) = α_{v²}(0).
				if a2.Equal(alpha2Init) && a1.Less(a2) {
					return true, fmt.Sprintf("ε=%v: α_v1=%v < α_v2=%v (unchanged)", eps, a1, a2), nil
				}
			} else {
				// Lemma 15: α_{v²}(ε) < α_{v¹}(ε) = α_{v¹}(0).
				if a1.Equal(alpha1Init) && a2.Less(a1) {
					return true, fmt.Sprintf("ε=%v: α_v2=%v < α_v1=%v (unchanged)", eps, a2, a1), nil
				}
			}
		}
		eps = eps.DivInt(2)
	}
	return false, "no admissible ε found", nil
}

// adjustPlateau finds the largest z ∈ [0, zMax] such that the decomposition
// structure of P_v(w1+z, w2−z) still equals sig (exact bisection; the
// structure persists on a closed plateau and then breaks, cf. the paper's
// critical point).
func (in *Instance) adjustPlateau(flipped bool, w1, w2, zMax numeric.Rat, sig string) (numeric.Rat, error) {
	same := func(z numeric.Rat) (bool, error) {
		ev, _, _, err := in.oriented(flipped, w1.Add(z), w2.Sub(z))
		if err != nil {
			return false, err
		}
		return ev.Signature == sig, nil
	}
	if zMax.Sign() <= 0 {
		return numeric.Zero, nil
	}
	if ok, err := same(zMax); err != nil {
		return numeric.Rat{}, err
	} else if ok {
		return zMax, nil
	}
	lo, hi := numeric.Zero, zMax
	for it := 0; it < 48; it++ {
		mid := lo.Add(hi).DivInt(2)
		ok, err := same(mid)
		if err != nil {
			return numeric.Rat{}, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	// The proof's critical point is the EXACT plateau edge: the paper reads
	// α-values off the un-split pair at z and needs them to agree with the
	// split pairs just beyond. An approximate z strictly inside the plateau
	// leaves Lemma 16's δ¹_{v¹} ε-positive. The edge is a ratio of weight
	// sums, hence the simplest rational in the bisection bracket.
	if lo.Less(hi) {
		cand := numeric.SimplestBetween(lo, hi)
		ok, err := same(cand)
		if err != nil {
			return numeric.Rat{}, err
		}
		if ok {
			return cand, nil
		}
	}
	return lo, nil
}

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "ok" {
		t.Fatalf("body %v (err %v)", body, err)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Generate some traffic first.
	ring := WireGraph{Ring: []string{"1", "2", "3"}}
	for i := 0; i < 3; i++ {
		mustPost(t, ts.URL, "/v1/utilities", UtilitiesRequest{Graph: ring}, &UtilitiesResponse{})
	}
	postJSON(t, ts.URL, "/v1/decompose", DecomposeRequest{Graph: ring, Engine: "quantum"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`irshared_requests_total{endpoint="/v1/utilities",code="200"} 3`,
		`irshared_requests_total{endpoint="/v1/decompose",code="400"} 1`,
		`irshared_request_seconds_count{endpoint="/v1/utilities"} 3`,
		"irshared_cache_hits_total 2",
		"irshared_cache_misses_total 1",
		"irshared_cache_entries 1",
		"irshared_pool_capacity",
		"irshared_batch_runs_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

func TestMethodAndBodyLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/decompose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/decompose: status %d, want 405", resp.StatusCode)
	}
	// Oversized body.
	big := bytes.Repeat([]byte("x"), 1024)
	status, _ := postRaw(t, ts.URL+"/v1/decompose", big)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", status)
	}
	// Unknown field.
	status, raw := postRaw(t, ts.URL+"/v1/decompose", []byte(`{"graph":{"ring":["1","1","1"]},"oops":1}`))
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("oops")) {
		t.Fatalf("unknown field: status %d body %s", status, raw)
	}
	// Trailing garbage.
	status, _ = postRaw(t, ts.URL+"/v1/decompose", []byte(`{"graph":{"ring":["1","1","1"]}} trailing`))
	if status != http.StatusBadRequest {
		t.Fatalf("trailing data: status %d, want 400", status)
	}
}

func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// mustRing builds a unit-free test ring of size n with weights 1..n.
func mustRing(t *testing.T, n int) *graph.Graph {
	t.Helper()
	ws := make([]numeric.Rat, n)
	for i := range ws {
		ws[i] = numeric.FromInt(int64(i%7 + 1))
	}
	return graph.Ring(ws)
}

func TestQueueTimeoutReturns503(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, QueueTimeout: 10 * time.Millisecond})
	// Occupy the single slot with a slow sweep.
	ring := wireOf(mustRing(t, 60))
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL, "/v1/sweep", SweepRequest{Graph: ring, V: 0, Grid: 512})
	}()
	time.Sleep(20 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, raw := postJSON(t, ts.URL, "/v1/utilities", UtilitiesRequest{Graph: WireGraph{Ring: []string{"1", "1", "1"}}})
		if status == http.StatusServiceUnavailable {
			if !bytes.Contains(raw, []byte("no worker slot")) {
				t.Fatalf("503 body: %s", raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Skip("could not observe pool saturation (machine too fast)")
		}
	}
	<-done
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// TestOptimizeKnobsParity proves the benchmarking knobs change only the
// amount of work: with the eval cache and the incremental engine disabled,
// Optimize must return exactly (Rat-equal) the same best split, utility,
// ratio, and piece certificate as the fully accelerated run.
func TestOptimizeKnobsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := []int{5, 6, 7, 9, 11}[rng.Intn(5)]
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		run := func(disable bool) *OptResult {
			in, err := NewInstance(g, v)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			opt, err := in.Optimize(OptimizeOptions{
				Grid:               16,
				DisableEvalCache:   disable,
				DisableIncremental: disable,
			})
			if err != nil {
				t.Fatalf("trial %d (disable=%v, w=%v, v=%d): %v", trial, disable, g.Weights(), v, err)
			}
			return opt
		}
		warm, cold := run(false), run(true)
		if !warm.BestW1.Equal(cold.BestW1) || !warm.BestU.Equal(cold.BestU) || !warm.Ratio.Equal(cold.Ratio) {
			t.Fatalf("trial %d (w=%v, v=%d): warm (w1=%v U=%v ζ=%v) != cold (w1=%v U=%v ζ=%v)",
				trial, g.Weights(), v,
				warm.BestW1, warm.BestU, warm.Ratio,
				cold.BestW1, cold.BestU, cold.Ratio)
		}
		if len(warm.Pieces) != len(cold.Pieces) {
			t.Fatalf("trial %d: piece counts differ: %d vs %d", trial, len(warm.Pieces), len(cold.Pieces))
		}
		for i := range warm.Pieces {
			wp, cp := warm.Pieces[i], cold.Pieces[i]
			if !wp.Lo.Equal(cp.Lo) || !wp.Hi.Equal(cp.Hi) || wp.Signature != cp.Signature ||
				!wp.BestW1.Equal(cp.BestW1) || !wp.BestU.Equal(cp.BestU) {
				t.Fatalf("trial %d piece %d differs: %+v vs %+v", trial, i, wp, cp)
			}
		}
	}
}

// TestEvalStatsAccounting checks the observability wiring: an accelerated
// Optimize reports cache traffic and solver activity, a fully disabled one
// reports none.
func TestEvalStatsAccounting(t *testing.T) {
	g, v, err := LowerBoundFamily(2, numeric.FromInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(g, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Optimize(OptimizeOptions{Grid: 16}); err != nil {
		t.Fatal(err)
	}
	st := in.EvalStats()
	if st.CacheMisses == 0 || st.Solver.Evals == 0 {
		t.Fatalf("accelerated run recorded no activity: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("bisection re-evaluations should hit the cache: %+v", st)
	}

	in2, err := NewInstance(g, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in2.Optimize(OptimizeOptions{Grid: 16, DisableEvalCache: true, DisableIncremental: true}); err != nil {
		t.Fatal(err)
	}
	st2 := in2.EvalStats()
	if st2.CacheHits != 0 || st2.Solver.Evals != 0 {
		t.Fatalf("disabled run still used the caches: %+v", st2)
	}
}

// TestEvalSplitCacheReturnsSameEval verifies repeated EvalSplit calls at an
// identical w1 return the memoized evaluation (pointer-equal) and that
// distinct w1 keys never collide.
func TestEvalSplitCacheReturnsSameEval(t *testing.T) {
	g := graph.Ring(numeric.Ints(3, 1, 4, 1, 5, 9, 2, 6))
	in, err := NewInstance(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	W := in.W()
	a, err := in.EvalSplit(W.DivInt(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.EvalSplit(W.DivInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical w1 did not hit the cache")
	}
	c, err := in.EvalSplit(W.DivInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct w1 returned the cached eval")
	}
	if !c.W1.Equal(W.DivInt(4)) {
		t.Fatalf("cached eval has wrong key: %v", c.W1)
	}
}

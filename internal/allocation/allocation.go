// Package allocation implements the BD Allocation Mechanism (Definition 5
// of the paper): given the bottleneck decomposition of a weighted graph, it
// constructs the fixed-point resource allocation of the proportional
// response dynamics via one bipartite max-flow per bottleneck pair.
//
// For a pair (B_i, C_i) with α_i < 1 the flow network routes each u ∈ B_i's
// whole endowment w_u across the graph edges between B_i and C_i into
// demands w_v/α_i at v ∈ C_i; the allocation is x_uv = f_uv and
// x_vu = α_i·f_uv. For the final self-pair (α_k = 1) the same construction
// runs on the bipartite double cover of the induced subgraph. All other
// edges carry zero. The bottleneck property guarantees these flows saturate;
// the package audits that exactly and loudly.
package allocation

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/numeric"
)

// Allocation is a resource allocation X = {x_uv}: x_uv is the amount vertex
// u sends to its neighbor v. It is stored sparsely; absent pairs are zero.
type Allocation struct {
	n int
	x map[[2]int]numeric.Rat
}

// newAllocation returns an empty allocation over n vertices.
func newAllocation(n int) *Allocation {
	return &Allocation{n: n, x: make(map[[2]int]numeric.Rat)}
}

// New returns an empty allocation over n vertices. It is the constructor for
// mechanism backends (internal/mechanism) that build allocations directly
// instead of going through the BD pipeline of Compute; transfers are
// accumulated with Add.
func New(n int) *Allocation { return newAllocation(n) }

// N returns the number of vertices.
func (a *Allocation) N() int { return a.n }

// Get returns x_uv.
func (a *Allocation) Get(u, v int) numeric.Rat { return a.x[[2]int{u, v}] }

// set records x_uv, dropping explicit zeros.
func (a *Allocation) set(u, v int, val numeric.Rat) {
	if val.Sign() < 0 {
		panic(fmt.Sprintf("allocation: negative transfer x[%d][%d] = %v", u, v, val))
	}
	if val.IsZero() {
		delete(a.x, [2]int{u, v})
		return
	}
	a.x[[2]int{u, v}] = val
}

// Add accumulates onto x_uv (used by the dynamics simulator as well).
func (a *Allocation) Add(u, v int, val numeric.Rat) {
	a.set(u, v, a.Get(u, v).Add(val))
}

// Utility returns U_v(X) = Σ_u x_uv, the total resource v receives.
func (a *Allocation) Utility(v int) numeric.Rat {
	total := numeric.Zero
	for key, val := range a.x {
		if key[1] == v {
			total = total.Add(val)
		}
	}
	return total
}

// Utilities returns all utilities in one pass.
func (a *Allocation) Utilities() []numeric.Rat {
	out := make([]numeric.Rat, a.n)
	for key, val := range a.x {
		out[key[1]] = out[key[1]].Add(val)
	}
	return out
}

// SentBy returns Σ_v x_uv, the total resource u gives away.
func (a *Allocation) SentBy(u int) numeric.Rat {
	total := numeric.Zero
	for key, val := range a.x {
		if key[0] == u {
			total = total.Add(val)
		}
	}
	return total
}

// Support returns the number of non-zero transfers.
func (a *Allocation) Support() int { return len(a.x) }

// Compute runs the BD Allocation Mechanism for g under decomposition d.
func Compute(g *graph.Graph, d *bottleneck.Decomposition) (*Allocation, error) {
	if d.N() != g.N() {
		return nil, fmt.Errorf("allocation: decomposition covers %d of %d vertices", d.N(), g.N())
	}
	a := newAllocation(g.N())
	for i, p := range d.Pairs {
		var err error
		switch {
		case p.Alpha.IsZero():
			// Isolated-vertex pair: nothing to exchange.
		case p.Alpha.Equal(numeric.One):
			err = a.computeSelfPair(g, p)
		default:
			err = a.computeCrossPair(g, p)
		}
		if err != nil {
			return nil, fmt.Errorf("allocation: pair %d: %w", i, err)
		}
	}
	return a, nil
}

// computeCrossPair handles (B_i, C_i) with 0 < α_i < 1.
func (a *Allocation) computeCrossPair(g *graph.Graph, p bottleneck.Pair) error {
	nb, nc := len(p.B), len(p.C)
	// Node layout: 0..nb-1 = B members, nb..nb+nc-1 = C members, then s, t.
	s, t := nb+nc, nb+nc+1
	nw := maxflow.NewNetwork(nb+nc+2, s, t)
	cIndex := make(map[int]int, nc)
	for j, v := range p.C {
		cIndex[v] = nb + j
	}
	type arcRef struct{ u, v, id int }
	var arcs []arcRef
	supply := numeric.Zero
	for iu, u := range p.B {
		nw.AddEdge(s, iu, maxflow.Finite(g.Weight(u)))
		supply = supply.Add(g.Weight(u))
		for _, v := range g.Neighbors(u) {
			if j, ok := cIndex[v]; ok {
				arcs = append(arcs, arcRef{u: u, v: v, id: nw.AddEdge(iu, j, maxflow.Inf)})
			}
		}
	}
	for j, v := range p.C {
		nw.AddEdge(nb+j, t, maxflow.Finite(g.Weight(v).Div(p.Alpha)))
	}
	flow := nw.Solve(maxflow.Dinic)
	if !flow.Equal(supply) {
		return fmt.Errorf("flow %v does not saturate supply %v (bottleneck property violated?)", flow, supply)
	}
	for _, ar := range arcs {
		f := nw.Flow(ar.id)
		if f.IsZero() {
			continue
		}
		a.set(ar.u, ar.v, f)              // x_uv = f_uv
		a.set(ar.v, ar.u, p.Alpha.Mul(f)) // x_vu = α·f_uv
	}
	return nil
}

// computeSelfPair handles the final pair with B_k = C_k and α_k = 1 via the
// bipartite double cover of the induced subgraph.
//
// The raw double-cover max flow is NOT canonical: Definition 5 admits any
// maximal flow, but only the symmetric ones (x_uv = x_vu) are fixed points
// of the proportional response dynamics — on the unit triangle the directed
// 3-cycle flow satisfies the definition yet oscillates under eq. (1), and
// Lemma 9 fails for it. Symmetrizing, x_uv = (f_{uv'} + f_{vu'})/2, keeps
// non-negativity, support, and the row sums Σ_v x_uv = w_u (each row sum is
// the mean of a source-side and a sink-side saturation), and yields the
// equilibrium allocation the paper works with.
func (a *Allocation) computeSelfPair(g *graph.Graph, p bottleneck.Pair) error {
	m := len(p.B)
	// Node layout: 0..m-1 left copies, m..2m-1 right copies, then s, t.
	s, t := 2*m, 2*m+1
	nw := maxflow.NewNetwork(2*m+2, s, t)
	index := make(map[int]int, m)
	for i, v := range p.B {
		index[v] = i
	}
	type arcRef struct{ u, v, id int }
	var arcs []arcRef
	supply := numeric.Zero
	for i, u := range p.B {
		nw.AddEdge(s, i, maxflow.Finite(g.Weight(u)))
		nw.AddEdge(m+i, t, maxflow.Finite(g.Weight(u)))
		supply = supply.Add(g.Weight(u))
		for _, v := range g.Neighbors(u) {
			if j, ok := index[v]; ok {
				arcs = append(arcs, arcRef{u: u, v: v, id: nw.AddEdge(i, m+j, maxflow.Inf)})
			}
		}
	}
	flow := nw.Solve(maxflow.Dinic)
	if !flow.Equal(supply) {
		return fmt.Errorf("double-cover flow %v does not saturate supply %v", flow, supply)
	}
	raw := make(map[[2]int]numeric.Rat, len(arcs))
	for _, ar := range arcs {
		raw[[2]int{ar.u, ar.v}] = nw.Flow(ar.id)
	}
	for _, ar := range arcs {
		f := raw[[2]int{ar.u, ar.v}].Add(raw[[2]int{ar.v, ar.u}]).DivInt(2)
		if !f.IsZero() {
			a.set(ar.u, ar.v, f) // x_uv = (f_{uv'} + f_{vu'})/2
		}
	}
	return nil
}

// Audit cross-checks an allocation produced by Compute against the theory:
//
//   - feasibility: every positive transfer runs along a graph edge and every
//     agent in a pair with α > 0 sends out exactly w_v,
//   - Proposition 6: U_v = w_v·α_v for B class, w_v/α_v for C class.
//
// It returns the first discrepancy.
func Audit(g *graph.Graph, d *bottleneck.Decomposition, a *Allocation) error {
	for key, val := range a.x {
		if val.Sign() <= 0 {
			return fmt.Errorf("allocation: non-positive stored transfer %v", val)
		}
		if !g.HasEdge(key[0], key[1]) {
			return fmt.Errorf("allocation: transfer along non-edge (%d,%d)", key[0], key[1])
		}
	}
	// Self-pair transfers must be symmetric (proportional-response fixed
	// point; see computeSelfPair).
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if d.ClassOf(u) == bottleneck.ClassBoth && d.ClassOf(v) == bottleneck.ClassBoth &&
			d.PairIndexOf(u) == d.PairIndexOf(v) {
			if !a.Get(u, v).Equal(a.Get(v, u)) {
				return fmt.Errorf("allocation: asymmetric self-pair transfer on (%d,%d): %v vs %v",
					u, v, a.Get(u, v), a.Get(v, u))
			}
		}
	}
	utils := a.Utilities()
	for v := 0; v < g.N(); v++ {
		if d.AlphaOf(v).IsZero() {
			if !utils[v].IsZero() {
				return fmt.Errorf("allocation: isolated vertex %d has utility %v", v, utils[v])
			}
			continue
		}
		if got := a.SentBy(v); !got.Equal(g.Weight(v)) {
			return fmt.Errorf("allocation: vertex %d sends %v, owns %v", v, got, g.Weight(v))
		}
		if want := d.Utility(g, v); !utils[v].Equal(want) {
			return fmt.Errorf("allocation: U_%d = %v, Proposition 6 says %v", v, utils[v], want)
		}
	}
	return nil
}

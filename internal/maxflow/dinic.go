package maxflow

import "repro/internal/numeric"

// dinic computes a maximum flow by repeated blocking flows on the level
// graph. With exact rational arithmetic every augmentation strictly
// increases the flow, and the usual O(V²E) phase bound applies.
func (nw *Network) dinic() numeric.Rat {
	total := numeric.Zero
	level := make([]int, nw.n)
	iter := make([]int, nw.n)
	queue := make([]int, 0, nw.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[nw.s] = 0
		queue = queue[:0]
		queue = append(queue, nw.s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range nw.adj[u] {
				a := &nw.arcs[id]
				if level[a.to] == -1 && nw.residual(id).Sign() > 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[nw.t] != -1
	}

	// dfs pushes up to limit units from u toward the sink along the level
	// graph and returns the amount pushed.
	var dfs func(u int, limit numeric.Rat) numeric.Rat
	dfs = func(u int, limit numeric.Rat) numeric.Rat {
		if u == nw.t {
			return limit
		}
		for ; iter[u] < len(nw.adj[u]); iter[u]++ {
			id := nw.adj[u][iter[u]]
			a := &nw.arcs[id]
			if level[a.to] != level[u]+1 {
				continue
			}
			res := nw.residual(id)
			if res.Sign() <= 0 {
				continue
			}
			pushed := dfs(a.to, limit.Min(res))
			if pushed.Sign() > 0 {
				nw.push(id, pushed)
				return pushed
			}
		}
		level[u] = -1 // dead end; prune
		return numeric.Zero
	}

	// The source's outgoing finite capacity bounds any augmentation.
	limit := numeric.Zero
	for _, id := range nw.adj[nw.s] {
		if id%2 == 0 {
			limit = limit.Add(nw.arcs[id].cap)
		}
	}
	if limit.IsZero() {
		return numeric.Zero
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(nw.s, limit)
			if pushed.Sign() == 0 {
				break
			}
			total = total.Add(pushed)
		}
	}
	return total
}

// Package repro is a Go reproduction of "Tightening Up the Incentive Ratio
// for Resource Sharing Over the Rings" (Cheng, Deng, Li — IPPS 2020).
//
// The paper studies the proportional response protocol for P2P resource
// sharing (Wu & Zhang), whose fixed point is computed by the BD Allocation
// Mechanism from the bottleneck decomposition of the weighted network, and
// proves that on ring networks the mechanism's incentive ratio against a
// Sybil attack is exactly 2. This package is the user-facing facade over
// the full system:
//
//   - exact rational arithmetic (Rat),
//   - weighted graphs and generators (Graph, Ring, Path, ...),
//   - bottleneck decomposition with three engines (Decompose),
//   - the BD Allocation Mechanism (Allocate),
//   - the proportional response dynamics (RunDynamics) and its
//     message-passing swarm variant (RunSwarm),
//   - the Sybil attack machinery and the paper's incentive-ratio analysis
//     (NewInstance, IncentiveRatio, VerifyTheorem8, LowerBoundFamily),
//   - the experiment drivers regenerating every figure (Experiments*).
//
// A five-line tour (the solver entry points are context-first and accept
// functional options — WithEngine, WithWorkers, WithGrid, WithRecorder,
// WithDecomposition; see facade.go):
//
//	g := repro.Ring(repro.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1))
//	ctx := context.Background()
//	dec, _ := repro.Decompose(ctx, g)                      // pairs + α
//	alloc, _ := repro.Allocate(ctx, g, repro.WithDecomposition(dec))
//	ratio, _ := repro.IncentiveRatio(ctx, g, 3)            // Sybil gain
//	fmt.Println(dec, alloc.Utility(3), ratio)              // ratio ≤ 2
package repro

import (
	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/p2p"
	"repro/internal/sybil"
)

// Rat is an exact rational number (int64 fast path, big.Rat fallback).
type Rat = numeric.Rat

// Exact-arithmetic constructors and helpers.
var (
	// NewRat returns the rational n/d (panics if d == 0).
	NewRat = numeric.New
	// RatFromInt returns the rational n/1.
	RatFromInt = numeric.FromInt
	// ParseRat reads "3", "3/4" or "0.75".
	ParseRat = numeric.Parse
	// Ints converts int64 values into a []Rat weight vector.
	Ints = numeric.Ints
)

// Graph is an undirected vertex-weighted network of resource-sharing
// agents.
type Graph = graph.Graph

// Graph constructors and generators.
var (
	// NewGraph returns a graph with n isolated weight-zero vertices.
	NewGraph = graph.New
	// Ring builds the cycle on len(ws) ≥ 3 vertices.
	Ring = graph.Ring
	// Path builds the path on len(ws) ≥ 1 vertices.
	Path = graph.Path
	// Complete builds K_n.
	Complete = graph.Complete
	// Star builds a star with center 0.
	Star = graph.Star
	// Fig1Graph builds the paper's Fig. 1 example.
	Fig1Graph = graph.Fig1Graph
	// ReadGraph parses the text graph format; WriteGraph emits it.
	ReadGraph  = graph.Read
	WriteGraph = graph.Write
)

// Decomposition is a bottleneck decomposition (Definition 2): the ordered
// pairs (B_i, C_i) with strictly increasing α-ratios.
type Decomposition = bottleneck.Decomposition

// Class labels a vertex B class, C class, or both (Definition 4).
type Class = bottleneck.Class

// Class values.
const (
	ClassB    = bottleneck.ClassB
	ClassC    = bottleneck.ClassC
	ClassBoth = bottleneck.ClassBoth
)

// Allocation is a resource allocation X = {x_uv}.
type Allocation = allocation.Allocation

// DynamicsOptions configures RunDynamics; DynamicsResult is its outcome.
type (
	DynamicsOptions = dynamics.Options
	DynamicsResult  = dynamics.Result
)

// RunDynamics simulates the proportional response dynamics (Definition 1).
func RunDynamics(g *Graph, opts DynamicsOptions) (*DynamicsResult, error) {
	return dynamics.Run(g, opts)
}

// SwarmConfig configures RunSwarm; SwarmResult is its outcome.
type (
	SwarmConfig = p2p.Config
	SwarmResult = p2p.Result
)

// RunSwarm executes the protocol as a concurrent message-passing P2P swarm.
func RunSwarm(g *Graph, cfg SwarmConfig) (*SwarmResult, error) { return p2p.Run(g, cfg) }

// AsyncSwarmConfig configures RunAsyncSwarm; AsyncSwarmResult is its
// outcome.
type (
	AsyncSwarmConfig = p2p.AsyncConfig
	AsyncSwarmResult = p2p.AsyncResult
)

// RunAsyncSwarm executes the protocol under message delay, loss, and peer
// churn (the robustness scenario of experiment E15).
func RunAsyncSwarm(g *Graph, cfg AsyncSwarmConfig) (*AsyncSwarmResult, error) {
	return p2p.RunAsync(g, cfg)
}

// SplitSpec describes a Sybil attack (identities, neighbor partition,
// weight division).
type SplitSpec = graph.SplitSpec

// AttackUtility returns the combined utility of the attacker's identities
// after the split.
func AttackUtility(g *Graph, sp SplitSpec) (Rat, error) { return sybil.AttackUtility(g, sp) }

// MisreportUtility returns U_v when v reports x ∈ [0, w_v] instead of w_v
// (the single-parameter deviation of [7]; never profitable by Theorem 10).
func MisreportUtility(g *Graph, v int, x Rat) (Rat, error) {
	return sybil.MisreportUtility(g, v, x)
}

// SybilSearchOptions tunes SybilSearch; SybilSearchResult reports its best
// finding.
type (
	SybilSearchOptions = sybil.SearchOptions
	SybilSearchResult  = sybil.SearchResult
)

// SybilSearch exhaustively probes Sybil strategies of agent v on a general
// graph (neighbor partitions × a weight grid).
func SybilSearch(g *Graph, v int, opts SybilSearchOptions) (*SybilSearchResult, error) {
	return sybil.Search(g, v, opts)
}

// PairAttackResult reports a simultaneous two-attacker search; see
// experiment E16 — coalitions are NOT bounded by Theorem 8.
type PairAttackResult = sybil.PairAttackResult

// PairAttack searches joint Sybil strategies of two ring agents over a
// weight grid (exactly evaluated; a lower-bound certificate generator).
func PairAttack(g *Graph, a, b, grid int) (*PairAttackResult, error) {
	return sybil.PairAttack(g, a, b, grid)
}

// Misreport-curve analysis (the structure theory of Section III-B).
type (
	// CurvePoint is one exact sample of U_v(x), α_v(x) and v's class.
	CurvePoint = analysis.CurvePoint
	// AlphaCase classifies α_v(x) per Proposition 11 (Fig. 2).
	AlphaCase = analysis.AlphaCase
	// StructureInterval is one maximal interval of constant decomposition
	// structure (possibly a single point).
	StructureInterval = analysis.Interval
)

// Analysis entry points.
var (
	// SampleCurve evaluates the misreport curve of agent v exactly.
	SampleCurve = analysis.SampleCurve
	// ClassifyAlphaCurve determines the Proposition 11 case.
	ClassifyAlphaCurve = analysis.ClassifyAlphaCurve
	// AlphaStar locates the exact α = 1 crossing x* (Case B-3).
	AlphaStar = analysis.AlphaStar
	// IntervalPartition computes the structure intervals of [0, w_v].
	IntervalPartition = analysis.IntervalPartition
	// VerifyTheorem10 checks misreport-utility monotonicity on a curve.
	VerifyTheorem10 = analysis.VerifyTheorem10
)

// SwarmAttackComparison contrasts honest and Sybil swarm runs.
type SwarmAttackComparison = p2p.AttackComparison

// CompareSwarmAttack runs the message-passing swarm honestly and under the
// given Sybil split and reports the attacker's realized gain.
func CompareSwarmAttack(g *Graph, sp SplitSpec, cfg SwarmConfig) (*SwarmAttackComparison, error) {
	return p2p.CompareAttack(g, sp, cfg)
}

// Instance is a ring resource-sharing game with a designated manipulative
// agent — the object of the paper's main theorem.
type Instance = core.Instance

// OptimizeOptions tunes the exact split optimizer; Verdict bundles a full
// Theorem 8 verification.
type (
	OptimizeOptions = core.OptimizeOptions
	Verdict         = core.Verdict
	StageReport     = core.StageReport
)

// NewInstance validates g as a ring and prepares agent v's attack analysis.
func NewInstance(g *Graph, v int) (*Instance, error) { return core.NewInstance(g, v) }

// VerifyTheorem8 optimizes agent v's Sybil split and checks every assertion
// of the paper's proof along the way.
func VerifyTheorem8(g *Graph, v int, opts OptimizeOptions) (*Verdict, error) {
	return core.VerifyTheorem8(g, v, opts)
}

// LowerBoundFamily builds the ring family whose incentive ratio approaches
// the tight bound 2: an odd ring of 2k+5 unit vertices plus one heavy
// vertex, attacker at ring distance 3. The k-th member's H → ∞ ratio is
// LowerBoundLimitRatio(k) = (2k+1)/(k+1).
var (
	LowerBoundFamily     = core.LowerBoundFamily
	LowerBoundLimitRatio = core.LowerBoundLimitRatio
)

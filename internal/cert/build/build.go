// Package build constructs the exact-rational certificates defined by
// internal/cert from solver answers.
//
// The builder is the trusted-side counterpart of cert.Check: it runs next
// to the solvers (re-using their decompositions and memoized split
// evaluations) and emits self-contained certificates that a dependency-free
// checker can verify without re-running anything. The only genuinely new
// computation here is the per-pair Hall-condition flow witness, obtained by
// solving the pair's bipartite demand/supply network exactly — if the
// decomposition is correct the witness always exists (LP duality), so a
// failure to saturate is reported as an error rather than papered over.
package build

import (
	"context"
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// InstanceOf renders g as a certificate instance (canonical weight strings,
// sorted edge list).
func InstanceOf(g *graph.Graph) cert.Instance {
	ws := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		ws[v] = g.Weight(v).String()
	}
	return cert.Instance{N: g.N(), Weights: ws, Edges: g.Edges()}
}

// Decomposition certifies dec as the bottleneck decomposition of g: the
// cover with one Hall-condition flow witness per pair, plus the Proposition
// 6 utilities.
func Decomposition(ctx context.Context, g *graph.Graph, dec *bottleneck.Decomposition) (*cert.DecompositionCert, error) {
	c := &cert.DecompositionCert{
		Schema:   cert.SchemaDecomposition,
		Instance: InstanceOf(g),
		Pairs:    make([]cert.PairCert, 0, len(dec.Pairs)),
	}
	active := make([]bool, g.N())
	for v := range active {
		active[v] = true
	}
	edges := g.Edges()
	for i := range dec.Pairs {
		p := &dec.Pairs[i]
		w, err := witness(ctx, g, edges, active, p.Alpha)
		if err != nil {
			return nil, fmt.Errorf("cert/build: pair %d: %w", i, err)
		}
		c.Pairs = append(c.Pairs, cert.PairCert{
			B:       append([]int(nil), p.B...),
			C:       append([]int(nil), p.C...),
			Alpha:   p.Alpha.String(),
			Witness: w,
		})
		for _, v := range p.B {
			active[v] = false
		}
		for _, v := range p.C {
			active[v] = false
		}
	}
	us := dec.Utilities(g)
	c.Utilities = make([]string, len(us))
	for v, u := range us {
		c.Utilities[v] = u.String()
	}
	return c, nil
}

// witness builds the Hall-condition flow witness for one pair: over the
// residual graph (the still-active vertices) it routes α·w(v) out of every
// vertex into the supplies w(u) of its neighbors by solving
//
//	s → L(v) with capacity α·w(v),  L(v) → R(u) (∞) per residual edge,
//	R(u) → t with capacity w(u)
//
// exactly. A maximum flow saturating every source arc certifies
// w(Γ(S) ∩ V_i) ≥ α·w(S) for all subsets S; only the L → R flows are
// recorded (the checker re-derives the demand and supply sides).
func witness(ctx context.Context, g *graph.Graph, edges [][2]int, active []bool, alpha numeric.Rat) ([]cert.FlowEdge, error) {
	if alpha.IsZero() {
		return nil, nil // every demand is zero; the empty witness verifies
	}
	total := numeric.Zero
	for v, a := range active {
		if a {
			total = total.Add(g.Weight(v))
		}
	}
	total = total.Mul(alpha)
	if total.IsZero() {
		return nil, nil // zero-weight residual cluster
	}
	// Node layout: 0 = source, 1 = sink, 2+v = demand side of v,
	// 2+n+v = supply side of v. Inactive vertices get no arcs.
	n := g.N()
	nw := maxflow.NewNetwork(2+2*n, 0, 1)
	for v := 0; v < n; v++ {
		if !active[v] {
			continue
		}
		nw.AddEdge(0, 2+v, maxflow.Finite(alpha.Mul(g.Weight(v))))
		nw.AddEdge(2+n+v, 1, maxflow.Finite(g.Weight(v)))
	}
	type arcRef struct{ from, to, id int }
	arcs := make([]arcRef, 0, 2*len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if !active[u] || !active[v] {
			continue
		}
		arcs = append(arcs, arcRef{u, v, nw.AddEdge(2+u, 2+n+v, maxflow.Inf)})
		arcs = append(arcs, arcRef{v, u, nw.AddEdge(2+v, 2+n+u, maxflow.Inf)})
	}
	if got := nw.SolveCtx(ctx, maxflow.Dinic); !got.Equal(total) {
		return nil, fmt.Errorf("cert/build: Hall witness infeasible: routed %v of demand %v (α is not a valid lower bound for this pair)", got, total)
	}
	out := make([]cert.FlowEdge, 0, len(arcs))
	for _, a := range arcs {
		if f := nw.Flow(a.id); f.Sign() > 0 {
			out = append(out, cert.FlowEdge{From: a.from, To: a.to, Flow: f.String()})
		}
	}
	return out, nil
}

// Split certifies one evaluated configuration P_v(w1, w2).
func Split(ctx context.Context, ev *core.PathEval) (*cert.SplitCert, error) {
	pc, err := Decomposition(ctx, ev.Path, ev.Dec)
	if err != nil {
		return nil, err
	}
	return &cert.SplitCert{
		W1:   ev.W1.String(),
		W2:   ev.W2.String(),
		Path: *pc,
		U1:   ev.U1.String(),
		U2:   ev.U2.String(),
		U:    ev.U.String(),
	}, nil
}

// Ratio certifies a completed split optimization end to end: ring cover,
// best split, per-piece bests with exact closed forms where they reproduce
// the best value, and the breakpoint-bracket evaluations that close the
// candidate maximum. The certificate's candidate set mirrors the
// optimizer's exactly, so cert.Check's max-equality test is an identity,
// not an approximation.
func Ratio(ctx context.Context, in *core.Instance, opt *core.OptResult) (*cert.RatioCert, error) {
	ringCert, err := Decomposition(ctx, in.G, in.Dec)
	if err != nil {
		return nil, err
	}
	rc := &cert.RatioCert{
		Schema: cert.SchemaRatio,
		Ring:   *ringCert,
		V:      in.V,
		Honest: in.HonestU.String(),
		Ratio:  opt.Ratio.String(),
		LeqTwo: opt.Ratio.LessEq(numeric.Two),
	}
	best, err := Split(ctx, opt.BestEval)
	if err != nil {
		return nil, err
	}
	rc.Best = *best
	W := in.W()
	for i := range opt.Pieces {
		p := &opt.Pieces[i]
		ev, err := in.EvalSplitCtx(ctx, p.BestW1)
		if err != nil {
			return nil, err
		}
		pb, err := Split(ctx, ev)
		if err != nil {
			return nil, err
		}
		pcert := cert.PieceCert{
			Lo:        p.Lo.String(),
			Hi:        p.Hi.String(),
			Signature: p.Signature,
			SamePair:  p.SamePair,
			Best:      *pb,
		}
		mid := p.Lo.Add(p.Hi).DivInt(2)
		evMid, err := in.EvalSplitCtx(ctx, mid)
		if err != nil {
			return nil, err
		}
		if rf, ok := pieceModel(evMid, W); ok {
			if num, den, exact := rf.exactAt(p.BestW1, p.BestU); exact {
				pcert.Num, pcert.Den, pcert.FormulaExact = num, den, true
			}
		}
		rc.Pieces = append(rc.Pieces, pcert)
	}
	// The gaps between consecutive pieces are the breakpoint brackets; the
	// optimizer evaluated both endpoints of every bracket, and the checker
	// demands them, so certify each (deduplicated — a snapped bracket can
	// collapse onto a shared endpoint).
	seen := make(map[string]bool)
	for i := 0; i+1 < len(opt.Pieces); i++ {
		for _, w1 := range []numeric.Rat{opt.Pieces[i].Hi, opt.Pieces[i+1].Lo} {
			key := w1.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			ev, err := in.EvalSplitCtx(ctx, w1)
			if err != nil {
				return nil, err
			}
			bc, err := Split(ctx, ev)
			if err != nil {
				return nil, err
			}
			rc.Boundary = append(rc.Boundary, *bc)
		}
	}
	rc.Chain = []string{
		fmt.Sprintf("honest = U_v(ring) = %s  (ring bottleneck cover, Prop. 6)", rc.Honest),
		fmt.Sprintf("U(w1*) = U1 + U2 = %s at w1* = %s  (path bottleneck cover)", rc.Best.U, rc.Best.W1),
		fmt.Sprintf("U(w1) <= U(w1*) over %d structure pieces and %d breakpoint evaluations", len(rc.Pieces), len(rc.Boundary)),
		fmt.Sprintf("ratio = U(w1*)/honest = %s <= 2  (Theorem 8)", rc.Ratio),
	}
	return rc, nil
}

// Sweep certifies a (possibly partial) sweep result produced on in. Grid is
// the sweep's grid parameter (the result stores only the covered index
// range). Point evaluations are served from the instance's memoization when
// the certificate is built right after the sweep.
func Sweep(ctx context.Context, in *core.Instance, res *sybil.SweepResult, grid int) (*cert.SweepCert, error) {
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("cert/build: cannot certify an empty sweep")
	}
	ringCert, err := Decomposition(ctx, in.G, in.Dec)
	if err != nil {
		return nil, err
	}
	sc := &cert.SweepCert{
		Schema:    cert.SchemaSweep,
		Ring:      *ringCert,
		V:         in.V,
		Grid:      grid,
		Start:     res.Start,
		BestIndex: res.BestIndex,
		Honest:    in.HonestU.String(),
		Ratio:     res.Ratio.String(),
		LeqTwo:    res.Ratio.LessEq(numeric.Two),
		Points:    make([]cert.SplitCert, 0, len(res.Points)),
	}
	for _, p := range res.Points {
		ev, err := in.EvalSplitCtx(ctx, p.W1)
		if err != nil {
			return nil, err
		}
		s, err := Split(ctx, ev)
		if err != nil {
			return nil, err
		}
		sc.Points = append(sc.Points, *s)
	}
	sc.Chain = []string{
		fmt.Sprintf("honest = U_v(ring) = %s  (ring bottleneck cover, Prop. 6)", sc.Honest),
		fmt.Sprintf("U(w1_i) certified at %d grid points, best at index %d", len(sc.Points), sc.BestIndex),
		fmt.Sprintf("ratio = best/honest = %s <= 2  (Theorem 8)", sc.Ratio),
	}
	return sc, nil
}

package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/numeric"
)

// Generators for the instance families used across tests, examples and the
// experiment harness. All generators that take weights panic on invalid
// input so that experiment code stays linear.

// Ring returns the cycle v0 - v1 - ... - v_{n-1} - v0 with the given weights
// (n = len(ws) ≥ 3).
func Ring(ws []numeric.Rat) *Graph {
	n := len(ws)
	if n < 3 {
		panic(fmt.Sprintf("graph: Ring needs at least 3 vertices, got %d", n))
	}
	g := New(n)
	mustSetAll(g, ws)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the path v0 - v1 - ... - v_{n-1} with the given weights
// (n ≥ 1).
func Path(ws []numeric.Rat) *Graph {
	n := len(ws)
	if n < 1 {
		panic("graph: Path needs at least 1 vertex")
	}
	g := New(n)
	mustSetAll(g, ws)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Complete returns the complete graph K_n with the given weights (n ≥ 1).
func Complete(ws []numeric.Rat) *Graph {
	n := len(ws)
	if n < 1 {
		panic("graph: Complete needs at least 1 vertex")
	}
	g := New(n)
	mustSetAll(g, ws)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// Star returns a star with center 0 and leaves 1..n-1.
func Star(ws []numeric.Rat) *Graph {
	n := len(ws)
	if n < 2 {
		panic("graph: Star needs at least 2 vertices")
	}
	g := New(n)
	mustSetAll(g, ws)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int, ws []numeric.Rat) *Graph {
	if a < 1 || b < 1 || len(ws) != a+b {
		panic("graph: CompleteBipartite invalid sizes")
	}
	g := New(a + b)
	mustSetAll(g, ws)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

func mustSetAll(g *Graph, ws []numeric.Rat) {
	if err := g.SetWeights(ws); err != nil {
		panic(err)
	}
}

// WeightDist names a distribution for random integer weights; used by the
// experiment sweeps so instance families are describable in tables.
type WeightDist int

const (
	// DistUniform draws weights uniformly from {1, ..., 100}.
	DistUniform WeightDist = iota
	// DistSkewed draws 1 with probability 0.8 and a value in
	// {50, ..., 150} otherwise, producing strong weight asymmetry.
	DistSkewed
	// DistPowers draws from {1, 2, 4, ..., 2^10}, exercising wide
	// dynamic range with exact doubling structure.
	DistPowers
	// DistUnit assigns weight 1 to every vertex (the symmetric case in
	// which α = 1 on rings).
	DistUnit
)

// String returns the distribution name for experiment tables.
func (d WeightDist) String() string {
	switch d {
	case DistUniform:
		return "uniform[1,100]"
	case DistSkewed:
		return "skewed"
	case DistPowers:
		return "powers-of-two"
	case DistUnit:
		return "unit"
	}
	return fmt.Sprintf("WeightDist(%d)", int(d))
}

// RandomWeights draws n weights from distribution d using rng.
func RandomWeights(rng *rand.Rand, n int, d WeightDist) []numeric.Rat {
	ws := make([]numeric.Rat, n)
	for i := range ws {
		switch d {
		case DistUniform:
			ws[i] = numeric.FromInt(int64(rng.Intn(100)) + 1)
		case DistSkewed:
			if rng.Float64() < 0.8 {
				ws[i] = numeric.One
			} else {
				ws[i] = numeric.FromInt(int64(rng.Intn(101)) + 50)
			}
		case DistPowers:
			ws[i] = numeric.FromInt(int64(1) << uint(rng.Intn(11)))
		case DistUnit:
			ws[i] = numeric.One
		default:
			panic(fmt.Sprintf("graph: unknown weight distribution %d", int(d)))
		}
	}
	return ws
}

// RandomRing returns a ring of n vertices with random weights from d.
func RandomRing(rng *rand.Rand, n int, d WeightDist) *Graph {
	return Ring(RandomWeights(rng, n, d))
}

// Theta returns a theta graph: two terminals joined by three internally
// disjoint paths with len1, len2, len3 internal vertices. Weights run
// terminal 0, terminal 1, then the paths' internal vertices in order. Theta
// graphs are the simplest networks with two cycles through a common vertex —
// a natural probe for the paper's general-network conjecture beyond rings.
func Theta(len1, len2, len3 int, ws []numeric.Rat) *Graph {
	if len1 < 0 || len2 < 0 || len3 < 0 {
		panic("graph: negative theta path length")
	}
	n := 2 + len1 + len2 + len3
	if len(ws) != n {
		panic(fmt.Sprintf("graph: Theta needs %d weights, got %d", n, len(ws)))
	}
	// Multi-edges are forbidden, so at most one path may be internally empty.
	empty := 0
	for _, l := range []int{len1, len2, len3} {
		if l == 0 {
			empty++
		}
	}
	if empty > 1 {
		panic("graph: Theta with two empty paths would need a multi-edge")
	}
	g := New(n)
	mustSetAll(g, ws)
	next := 2
	for _, l := range []int{len1, len2, len3} {
		prev := 0
		for i := 0; i < l; i++ {
			g.MustAddEdge(prev, next)
			prev = next
			next++
		}
		g.MustAddEdge(prev, 1)
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices (via a
// random Prüfer-like attachment: vertex i attaches to a uniform earlier
// vertex), with weights drawn from d.
func RandomTree(rng *rand.Rand, n int, d WeightDist) *Graph {
	if n < 1 {
		panic("graph: RandomTree needs n >= 1")
	}
	g := New(n)
	mustSetAll(g, RandomWeights(rng, n, d))
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v))
	}
	return g
}

// RandomConnected returns a connected random graph: a uniform spanning-ish
// backbone (random permutation path) plus each extra edge with probability p.
// Weights are drawn from d.
func RandomConnected(rng *rand.Rand, n int, p float64, d WeightDist) *Graph {
	if n < 1 {
		panic("graph: RandomConnected needs n >= 1")
	}
	g := New(n)
	mustSetAll(g, RandomWeights(rng, n, d))
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(perm[i], perm[i+1])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// Barbell returns a barbell graph: two cliques K_a joined by a bridge path
// of bridge internal vertices (bridge ≥ 0; with bridge = 0 the two cliques
// share one direct edge). Vertices run left clique 0..a-1, bridge a..a+
// bridge-1, right clique a+bridge..2a+bridge-1; the bridge attaches to
// vertex a-1 of the left clique and vertex a+bridge of the right one.
// Barbells concentrate weight behind two cut vertices — the sharpest
// bottleneck structure of the topology-scan families.
func Barbell(a, bridge int, ws []numeric.Rat) *Graph {
	if a < 2 {
		panic(fmt.Sprintf("graph: Barbell needs cliques of at least 2 vertices, got %d", a))
	}
	if bridge < 0 {
		panic("graph: negative barbell bridge length")
	}
	n := 2*a + bridge
	if len(ws) != n {
		panic(fmt.Sprintf("graph: Barbell needs %d weights, got %d", n, len(ws)))
	}
	g := New(n)
	mustSetAll(g, ws)
	right := a + bridge
	for i := 0; i < a; i++ {
		for j := i + 1; j < a; j++ {
			g.MustAddEdge(i, j)
			g.MustAddEdge(right+i, right+j)
		}
	}
	prev := a - 1
	for b := 0; b < bridge; b++ {
		g.MustAddEdge(prev, a+b)
		prev = a + b
	}
	g.MustAddEdge(prev, right)
	return g
}

// RandomBarbell returns a barbell on n ≥ 5 vertices with clique size
// max(2, n/3) and the remainder as the bridge, weights drawn from d.
func RandomBarbell(rng *rand.Rand, n int, d WeightDist) *Graph {
	if n < 5 {
		panic(fmt.Sprintf("graph: RandomBarbell needs n >= 5, got %d", n))
	}
	a := n / 3
	if a < 2 {
		a = 2
	}
	return Barbell(a, n-2*a, RandomWeights(rng, n, d))
}

// SmallWorld returns a Watts–Strogatz-style small-world graph on n ≥ 5
// vertices: the base ring 0-1-...-n-1-0 plus the distance-2 chords
// (i, i+2), each chord independently rewired with probability p to a
// uniformly random non-adjacent endpoint. The base ring is never rewired,
// so the graph stays connected for every draw; determinism comes entirely
// from rng. Weights are drawn from d.
func SmallWorld(rng *rand.Rand, n int, p float64, d WeightDist) *Graph {
	if n < 5 {
		panic(fmt.Sprintf("graph: SmallWorld needs n >= 5, got %d", n))
	}
	g := New(n)
	mustSetAll(g, RandomWeights(rng, n, d))
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		u, v := i, (i+2)%n
		if rng.Float64() < p {
			// Rewire the chord's far endpoint to a uniform vertex that is
			// neither u nor already adjacent to u (keeping the graph simple).
			var candidates []int
			for w := 0; w < n; w++ {
				if w != u && !g.HasEdge(u, w) {
					candidates = append(candidates, w)
				}
			}
			if len(candidates) > 0 {
				v = candidates[rng.Intn(len(candidates))]
			}
		}
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Fig1Graph returns the 6-vertex example of Fig. 1 in the paper: vertices
// v1..v6 (here 0..5) where the first bottleneck pair is ({v1,v2}, {v3}) with
// α = 1/3 and the second is ({v4,v5,v6}, {v4,v5,v6}) with α = 1.
//
// Construction: v1 and v2 attach only to v3 (so Γ({v1,v2}) = {v3});
// weights w1 = w2 = 3 and w3 = 2 give α({v1,v2}) = 2/6 = 1/3. The triangle
// v4, v5, v6 with unit weights decomposes as B = C with α = 1; v3
// additionally links the two parts so the graph is connected. (The paper's
// figure fixes the pairs and the α values but not the weights; any profile
// realizing them is faithful.)
func Fig1Graph() *Graph {
	g := New(6)
	weights := []numeric.Rat{
		numeric.FromInt(3), numeric.FromInt(3), numeric.FromInt(2),
		numeric.One, numeric.One, numeric.One,
	}
	for v := 0; v < 6; v++ {
		g.MustSetWeight(v, weights[v])
		g.SetLabel(v, fmt.Sprintf("v%d", v+1))
	}
	g.MustAddEdge(0, 2) // v1 - v3
	g.MustAddEdge(1, 2) // v2 - v3
	g.MustAddEdge(2, 3) // v3 - v4
	g.MustAddEdge(3, 4) // v4 - v5
	g.MustAddEdge(4, 5) // v5 - v6
	g.MustAddEdge(3, 5) // v4 - v6
	return g
}

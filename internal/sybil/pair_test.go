package sybil

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestPairAttackValidation(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 2, 3, 4))
	if _, err := PairAttack(graph.Path(numeric.Ints(1, 2)), 0, 1, 4); err == nil {
		t.Error("non-ring accepted")
	}
	if _, err := PairAttack(g, 0, 0, 4); err == nil {
		t.Error("identical attackers accepted")
	}
	if _, err := PairAttack(g, 0, 9, 4); err == nil {
		t.Error("out-of-range attacker accepted")
	}
}

func TestPairAttackUnitRingCombinedNeutral(t *testing.T) {
	// On a fully symmetric ring no joint strategy improves the coalition's
	// combined utility (individually, one partner may still profit from the
	// other's self-sacrifice).
	g := graph.Ring(numeric.Ints(1, 1, 1, 1, 1, 1))
	res, err := PairAttack(g, 0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CombinedRatio.Equal(numeric.One) {
		t.Fatalf("combined ratio on unit ring = %v, want 1", res.CombinedRatio)
	}
	if res.RatioA.Less(numeric.One) || res.RatioB.Less(numeric.One) {
		t.Fatalf("staying honest is always available: %v %v", res.RatioA, res.RatioB)
	}
}

func TestPairAttackAtLeastSingle(t *testing.T) {
	// The joint search includes "B stays whole", so each attacker's best is
	// at least what a lone grid attack of the same resolution achieves.
	g := graph.Ring(numeric.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1))
	res, err := PairAttack(g, 3, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	lone, err := Search(g, 3, SearchOptions{GridResolution: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestA.Less(lone.Best) {
		t.Fatalf("joint search best %v below lone search %v", res.BestA, lone.Best)
	}
	// Strategies per attacker: stay whole + (grid+1) split fractions.
	if want := 10 * 10; res.Tried != want {
		t.Fatalf("tried %d joint strategies, want %d", res.Tried, want)
	}
}

func TestPairAttackCoalitionEscapesTheorem8(t *testing.T) {
	// The headline finding of E16: Theorem 8 bounds unilateral deviations
	// only. On ring (128, 2, 128, 128, 512, 4, 32) the coalition {4, 5}
	// exceeds 4x its honest combined utility — attacker 4 (w=512) dumps its
	// endowment toward attacker 5's side, whose identity harvests it.
	g := graph.Ring(numeric.Ints(128, 2, 128, 128, 512, 4, 32))
	res, err := PairAttack(g, 5, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CombinedRatio.Equal(numeric.New(335, 82)) {
		t.Fatalf("combined ratio = %v, want the certified 335/82", res.CombinedRatio)
	}
	if res.CombinedRatio.Float64() < 4.0 {
		t.Fatalf("expected > 4x coalition gain, got %v", res.CombinedRatio)
	}
	// The externality on the light partner is enormous.
	if res.RatioA.Float64() < 10 {
		t.Fatalf("expected a large individual externality, got %v", res.RatioA)
	}
}

func TestPairAttackRandomRingsProduceCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	overTwo := 0
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(5) + 5
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(3)))
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		res, err := PairAttack(g, a, b, 6)
		if err != nil {
			t.Fatal(err)
		}
		if res.CombinedRatio.Less(numeric.One) {
			t.Fatalf("trial %d: combined ratio %v < 1 (honest is in the strategy set)", trial, res.CombinedRatio)
		}
		if numeric.Two.Less(res.CombinedRatio) {
			overTwo++
		}
	}
	_ = overTwo // any count is legitimate; the deterministic certificate test pins the finding
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
)

// Config tunes a Router. Zero values select the documented defaults.
type Config struct {
	// Nodes is the static seed list of backend base URLs (e.g.
	// "http://10.0.0.1:8080"). Required, at least one.
	Nodes []string
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 64).
	VNodes int
	// ProbeInterval is the /readyz probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange (default 2s).
	ProbeTimeout time.Duration
	// DeadAfter is how many consecutive failed probes kill a node
	// (default 3).
	DeadAfter int
	// LeaseTTL is the placement lease duration for durable jobs (default
	// 15s). A lease not renewed within its TTL — the owner died or
	// partitioned — has its job re-placed on a survivor.
	LeaseTTL time.Duration
	// RenewInterval is the lease renewal/supervision period (default
	// LeaseTTL/3).
	RenewInterval time.Duration
	// QuarantineFor is how long a certificate rejection bars a node from
	// traffic (default 30s); after it elapses, the next successful probe
	// readmits the node.
	QuarantineFor time.Duration
	// DataDir persists the lease WAL so placements survive router
	// restarts. Empty: leases are memory-only (in-process clusters, tests).
	DataDir string
	// Logger receives structured router logs (default slog.Default()).
	Logger *slog.Logger
	// Chaos arms the cluster.probe and cluster.lease fault sites (see
	// internal/fault); nil disables injection.
	Chaos *fault.Injector
	// HTTPClient overrides the backend transport (default a dedicated
	// client with sane timeouts).
	HTTPClient *http.Client
	// TraceBuffer bounds retained request traces (default 256; negative
	// disables router tracing).
	TraceBuffer int
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.RenewInterval <= 0 {
		c.RenewInterval = c.LeaseTTL / 3
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 60 * time.Second}
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = obs.DefaultCapacity
	}
	return c
}

// Error codes the router adds to the catalogue. Backend errors pass through
// with their own codes.
const (
	// CodeNoBackends: every node is dead or quarantined (503).
	CodeNoBackends = "no_backends"
	// CodeBadGateway: the placement node and its failover replica both
	// failed at the node level (502).
	CodeBadGateway = "bad_gateway"
	// CodeLeaseUnavailable: the job was accepted by a backend but the
	// router could not persist its placement lease (503). Resubmitting is
	// safe and converges: submission is content-addressed, so the retry
	// dedupes to the same job and only the lease grant is repeated.
	CodeLeaseUnavailable = "lease_unavailable"
)

// Router is the cluster coordinator: a reverse proxy that owns placement,
// membership, failover, job leases, and certificate verification. Construct
// with New, mount Handler, call Start to launch the probe and lease loops,
// and Close to stop them.
type Router struct {
	cfg     Config
	ring    *ring
	members *membership
	leases  *leaseLog
	hc      *http.Client
	log     *slog.Logger
	col     *obs.Collector
	base    context.Context // carries the chaos injector into loops

	requestsMu sync.Mutex
	requests   map[string]int64 // "endpoint|status" → count

	failovers      atomic.Int64
	certChecks     atomic.Int64
	certRejections atomic.Int64
	leaseGrants    atomic.Int64
	leaseRenewals  atomic.Int64
	leaseReplaced  atomic.Int64
	leaseRetired   atomic.Int64

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// New builds a Router over the seed node list and replays its lease WAL
// (when DataDir is set): leases from a previous router process come back
// live and their jobs are re-supervised — and re-placed if their owner died
// while the router was down.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one backend node is required")
	}
	leases, err := openLeaseLog(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	var col *obs.Collector
	if cfg.TraceBuffer > 0 {
		col = obs.NewCollector(obs.CollectorConfig{Capacity: cfg.TraceBuffer})
	}
	r := &Router{
		cfg:      cfg,
		ring:     newRing(cfg.Nodes, cfg.VNodes),
		members:  newMembership(cfg.Nodes, cfg.DeadAfter, cfg.QuarantineFor),
		leases:   leases,
		hc:       cfg.HTTPClient,
		log:      cfg.Logger,
		col:      col,
		base:     fault.ContextWith(context.Background(), cfg.Chaos),
		requests: make(map[string]int64),
		done:     make(chan struct{}),
	}
	return r, nil
}

// Start launches the membership prober and the lease supervision loop.
func (r *Router) Start() {
	r.wg.Add(2)
	go func() {
		defer r.wg.Done()
		r.probeOnce(r.base)
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.done:
				return
			case <-t.C:
				r.probeOnce(r.base)
			}
		}
	}()
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.RenewInterval)
		defer t.Stop()
		for {
			select {
			case <-r.done:
				return
			case <-t.C:
				r.superviseLeases(r.base)
			}
		}
	}()
}

// Close stops the loops and closes the lease log.
func (r *Router) Close() error {
	r.closeOnce.Do(func() { close(r.done) })
	r.wg.Wait()
	return r.leases.close()
}

// Members exposes the current membership view (tests, ops tooling).
func (r *Router) Members() []Member { return r.members.snapshot() }

// Leases exposes copies of the live lease table (tests, ops tooling).
func (r *Router) Leases() []Lease { return r.leases.all() }

// Handler returns the router's http.Handler: the full /v1 surface proxied
// with placement and failover, plus the router's own health and metrics.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range []string{"/v1/decompose", "/v1/allocate", "/v1/utilities"} {
		ep := ep
		mux.HandleFunc("POST "+ep, r.instrument(ep, func(w http.ResponseWriter, req *http.Request) {
			r.proxyCompute(w, req, ep, nil)
		}))
	}
	mux.HandleFunc("POST /v1/ratio", r.instrument("/v1/ratio", func(w http.ResponseWriter, req *http.Request) {
		r.proxyCompute(w, req, "/v1/ratio", verifyRatioCert)
	}))
	mux.HandleFunc("POST /v1/sweep", r.instrument("/v1/sweep", func(w http.ResponseWriter, req *http.Request) {
		r.proxyCompute(w, req, "/v1/sweep", verifySweepCert)
	}))
	mux.HandleFunc("POST /v1/tournament", r.instrument("/v1/tournament", func(w http.ResponseWriter, req *http.Request) {
		r.proxyAny(w, req, "/v1/tournament")
	}))
	mux.HandleFunc("POST /v1/scenario", r.instrument("/v1/scenario", func(w http.ResponseWriter, req *http.Request) {
		// ksybil/coalition bodies carry a graph, so placementKey lands them
		// where that instance's caches are warm; topology scans have no
		// graph and fall back to the stable endpoint spread.
		r.proxyCompute(w, req, "/v1/scenario", nil)
	}))
	mux.HandleFunc("GET /v1/mechanisms", r.instrument("/v1/mechanisms", func(w http.ResponseWriter, req *http.Request) {
		r.proxyAny(w, req, "/v1/mechanisms")
	}))
	mux.HandleFunc("POST /v1/jobs", r.instrument("/v1/jobs", r.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", r.instrument("/v1/jobs#list", r.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", r.instrument("/v1/jobs/{id}", r.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.instrument("/v1/jobs/{id}", r.handleJobCancel))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "router"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		alive := 0
		for _, m := range r.members.snapshot() {
			if m.State == StateAlive {
				alive++
			}
		}
		if alive == 0 {
			writeError(w, http.StatusServiceUnavailable, CodeNoBackends, "no live backend nodes")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "alive_nodes": alive})
	})
	mux.HandleFunc("GET /cluster/nodes", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.members.snapshot())
	})
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

// instrument opens a router trace per request and counts it by endpoint and
// status.
func (r *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r.col != nil {
			tr := r.col.NewTrace(endpoint)
			w.Header().Set("X-Router-Trace-Id", strconv.FormatUint(tr.ID(), 10))
			req = req.WithContext(tr.Context(req.Context()))
			defer tr.Finish()
		}
		if r.cfg.Chaos != nil {
			req = req.WithContext(fault.ContextWith(req.Context(), r.cfg.Chaos))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, req)
		r.requestsMu.Lock()
		r.requests[endpoint+"|"+strconv.Itoa(sw.code)]++
		r.requestsMu.Unlock()
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// placementBody is the subset of every compute request the router needs
// for placement: the instance graph and the mechanism scope.
type placementBody struct {
	Graph     server.WireGraph `json:"graph"`
	Mechanism string           `json:"mechanism"`
}

// placementKey derives the ring key of a compute request body; ok=false
// (malformed body, unknown mechanism) falls back to any-node routing and
// lets the backend produce its precise 400.
func placementKey(body []byte) (string, bool) {
	var pb placementBody
	if err := json.Unmarshal(body, &pb); err != nil {
		return "", false
	}
	key, err := server.PlacementKey(&pb.Graph, pb.Mechanism)
	if err != nil {
		return "", false
	}
	return key, true
}

// aliveSequence is the ring's failover order for key with dead and
// quarantined nodes removed.
func (r *Router) aliveSequence(key string) []string {
	seq := r.ring.sequence(key)
	alive := seq[:0:0]
	for _, n := range seq {
		if r.members.alive(n) {
			alive = append(alive, n)
		}
	}
	return alive
}

// proxyCompute routes one compute request: consistent-hash placement on the
// instance key, single-retry failover to the next ring replica, and — when
// verify is set and the backend answered 200 — solver-free certificate
// checking with quarantine on failure.
func (r *Router) proxyCompute(w http.ResponseWriter, req *http.Request, endpoint string, verify func([]byte) error) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "unreadable request body")
		return
	}
	ctx, sp := obs.Start(req.Context(), "router.place")
	key, keyed := placementKey(body)
	var seq []string
	if keyed {
		seq = r.aliveSequence(key)
		sp.SetAttr("key", key)
	} else {
		seq = r.aliveSequence(endpoint) // arbitrary but stable spread
	}
	sp.End()
	r.forward(ctx, w, req, endpoint, body, seq, verify)
}

// proxyAny routes a request with no instance affinity (tournaments span
// many instances; discovery is node-independent) to the first alive node.
func (r *Router) proxyAny(w http.ResponseWriter, req *http.Request, endpoint string) {
	var body []byte
	if req.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, 8<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_body", "unreadable request body")
			return
		}
	}
	r.forward(req.Context(), w, req, endpoint, body, r.aliveSequence(endpoint), nil)
}

// forward attempts the request on seq[0], hedging with a single retry on
// the next replica when a node fails at the node level (transport error,
// 502/504) or flunks certificate verification. Backend answers — success
// or error — pass through byte-for-byte otherwise.
func (r *Router) forward(ctx context.Context, w http.ResponseWriter, req *http.Request, endpoint string, body []byte, seq []string, verify func([]byte) error) {
	if len(seq) == 0 {
		writeError(w, http.StatusServiceUnavailable, CodeNoBackends, "no live backend nodes")
		return
	}
	attempts := seq
	if len(attempts) > 2 {
		attempts = attempts[:2] // single-retry hedging
	}
	var lastErr error
	for i, node := range attempts {
		if i > 0 {
			r.failovers.Add(1)
		}
		status, hdr, respBody, err := r.exchange(ctx, node, req, endpoint, body)
		if err != nil || status == http.StatusBadGateway || status == http.StatusGatewayTimeout {
			if err == nil {
				err = fmt.Errorf("cluster: node %s answered %d", node, status)
			}
			lastErr = err
			r.log.Warn("node failed, failing over", "node", node, "endpoint", endpoint, "err", err)
			continue
		}
		if verify != nil && status == http.StatusOK {
			r.certChecks.Add(1)
			_, csp := obs.Start(ctx, "router.cert_check")
			verr := verify(respBody)
			csp.End()
			if verr != nil {
				r.certRejections.Add(1)
				r.members.quarantine(node, time.Now())
				lastErr = fmt.Errorf("cluster: node %s returned an invalid certificate: %w", node, verr)
				r.log.Error("certificate check failed; node quarantined", "node", node, "err", verr)
				continue
			}
		}
		copyHeaders(w, hdr)
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	writeErrorDetail(w, http.StatusBadGateway, CodeBadGateway,
		"backend placement and failover replica both failed", fmt.Sprint(lastErr))
}

// exchange performs one proxied HTTP round trip.
func (r *Router) exchange(ctx context.Context, node string, req *http.Request, endpoint string, body []byte) (int, http.Header, []byte, error) {
	ctx, sp := obs.Start(ctx, "router.forward")
	sp.SetAttr("node", node)
	defer sp.End()
	url := node + endpoint
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	preq, err := http.NewRequestWithContext(ctx, req.Method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		preq.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(preq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	return resp.StatusCode, resp.Header, raw, nil
}

// verifyRatioCert re-checks a /v1/ratio answer's certificate — the zero-
// trust gate: the router never recomputes the ratio, it verifies the proof.
// Answers without a certificate (the request didn't opt in) pass.
func verifyRatioCert(body []byte) error {
	var resp server.RatioResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("undecodable ratio response: %w", err)
	}
	if resp.Certificate == nil {
		return nil
	}
	return cert.Check(resp.Certificate)
}

// verifySweepCert is verifyRatioCert for /v1/sweep answers.
func verifySweepCert(body []byte) error {
	var resp server.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("undecodable sweep response: %w", err)
	}
	if resp.Certificate == nil {
		return nil
	}
	return cert.Check(resp.Certificate)
}

func copyHeaders(w http.ResponseWriter, hdr http.Header) {
	for _, k := range []string{"Content-Type", "Retry-After", "X-Trace-Id"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorResponse{Code: code, Message: msg})
}

func writeErrorDetail(w http.ResponseWriter, status int, code, msg, detail string) {
	writeJSON(w, status, server.ErrorResponse{Code: code, Message: msg, Detail: detail})
}

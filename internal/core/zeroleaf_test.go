package core

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// TestEvalPairZeroLeaves pins that the path evaluator accepts splits with
// BOTH leaf weights zero — the degenerate compositions a k ≥ 3 scenario
// scan (internal/scenario) produces when every unit of weight lands on the
// isolated interior identities. General-graph decomposition does not admit
// zero-weight vertices, but the dedicated path machinery must.
func TestEvalPairZeroLeaves(t *testing.T) {
	g := graph.Ring(numeric.Ints(128, 2, 128, 128, 512, 4, 32))
	in, err := NewInstanceCtx(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := in.EvalPairCtx(context.Background(), numeric.Zero, numeric.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if ev.U.Sign() != 0 {
		t.Fatalf("two zero-weight leaves earned %v, want 0", ev.U)
	}
}

package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
)

// Lease state machine (see DESIGN.md):
//
//	grant ──► active ──renew──► active ──done──► retired
//	            │
//	            └── owner dead / TTL expired ──► re-placed (new grant on a
//	                survivor, seeded with the last observed checkpoint)
//
// The lease log reuses the WAL framing of internal/jobs —
// [4-byte LE length][4-byte CRC-32C][JSON payload] — with three ops:
//
//   - "grant": full lease (job ID, owner, expiry, submission body);
//     fsync'd — an acknowledged placement must survive a router crash.
//   - "renew": expiry bump plus the checkpoint delta observed since the
//     last renewal; NOT fsync'd — losing a renewal costs recomputation of
//     a few points after a crash, never correctness (points are exact and
//     deterministic, so a stale seed just re-derives the lost tail).
//   - "done": the job reached a terminal state on its owner; fsync'd so a
//     restarted router does not resurrect finished work.
//
// Replay reduces the log to the live lease table: grant upserts, renew
// advances, done deletes. A torn tail (crash mid-append) is truncated,
// exactly like the jobs WAL.

const leaseMaxFrame = 16 << 20

var leaseCRC = crc32.MakeTable(crc32.Castagnoli)

// Lease is one durable job placement: job ID, owning node, and the
// checkpointed prefix the router has observed — everything needed to
// re-place the job on a survivor if the owner dies.
type Lease struct {
	JobID  string `json:"job_id"`
	Node   string `json:"node"`
	Kind   string `json:"kind"`
	Key    string `json:"key"` // placement key the owner was chosen by
	Expiry int64  `json:"expiry_unix_nano"`
	// Body is the original, validated POST /v1/jobs body; a re-placement
	// replays it (content addressing makes the job ID identical) with a
	// Checkpoint seed attached.
	Body      json.RawMessage         `json:"body"`
	NextIndex int                     `json:"next_index"`
	Points    []server.WireSweepPoint `json:"points,omitempty"`
}

type leaseEntry struct {
	Op        string                  `json:"op"` // grant | renew | done
	Lease     *Lease                  `json:"lease,omitempty"`
	ID        string                  `json:"id,omitempty"`
	Expiry    int64                   `json:"expiry_unix_nano,omitempty"`
	Start     int                     `json:"start,omitempty"`
	Points    []server.WireSweepPoint `json:"points,omitempty"`
	NextIndex int                     `json:"next_index,omitempty"`
}

// leaseLog is the crash-safe lease table. With an empty dir it degrades to
// an in-memory table: placements don't survive a router restart, but every
// in-process behavior (renewal, expiry, re-placement) is identical.
type leaseLog struct {
	mu      sync.Mutex
	leases  map[string]*Lease
	f       *os.File // nil in memory-only mode
	appends int64
	syncs   int64
}

func openLeaseLog(dir string) (*leaseLog, error) {
	l := &leaseLog{leases: make(map[string]*Lease)}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: lease dir: %w", err)
	}
	path := filepath.Join(dir, "leases.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open lease log: %w", err)
	}
	valid, torn, err := l.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: truncate torn lease log: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	return l, nil
}

func (l *leaseLog) replay(r io.Reader) (valid int64, torn bool, err error) {
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return valid, err != io.EOF, nil
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		if n > leaseMaxFrame {
			return valid, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, true, nil
		}
		if crc32.Checksum(payload, leaseCRC) != binary.LittleEndian.Uint32(header[4:8]) {
			return valid, true, nil
		}
		var e leaseEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return valid, false, fmt.Errorf("cluster: lease log entry at offset %d: %w", valid, err)
		}
		l.applyLocked(&e)
		valid += int64(8 + n)
	}
}

func (l *leaseLog) applyLocked(e *leaseEntry) {
	switch e.Op {
	case "grant":
		if e.Lease != nil {
			cp := *e.Lease
			l.leases[cp.JobID] = &cp
		}
	case "renew":
		ls, ok := l.leases[e.ID]
		if !ok {
			return
		}
		ls.Expiry = e.Expiry
		if len(e.Points) > 0 && e.Start <= len(ls.Points) {
			ls.Points = append(ls.Points[:e.Start], e.Points...)
		}
		if e.NextIndex > ls.NextIndex {
			ls.NextIndex = e.NextIndex
		}
	case "done":
		delete(l.leases, e.ID)
	}
}

// append logs one entry through the cluster.lease fault site. An injected
// or real write error leaves the in-memory table untouched — the caller
// degrades (the placement stays unrecorded and is retried) rather than
// diverging from its own log.
func (l *leaseLog) append(ctx context.Context, e *leaseEntry, sync bool) error {
	if err := fault.Hit(ctx, fault.SiteClusterLease); err != nil {
		return err
	}
	if l.f != nil {
		payload, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("cluster: encode lease entry: %w", err)
		}
		buf := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, leaseCRC))
		copy(buf[8:], payload)
		if _, err := l.f.Write(buf); err != nil {
			return fmt.Errorf("cluster: append lease log: %w", err)
		}
		l.appends++
		if sync {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("cluster: sync lease log: %w", err)
			}
			l.syncs++
		}
	}
	l.applyLocked(e)
	return nil
}

// grant places jobID on node under a TTL starting now.
func (l *leaseLog) grant(ctx context.Context, ls *Lease) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(ctx, &leaseEntry{Op: "grant", Lease: ls}, true)
}

// renew bumps jobID's expiry and records the checkpoint delta since the
// last observation (points [start, start+len)).
func (l *leaseLog) renew(ctx context.Context, id string, expiry time.Time, start int, pts []server.WireSweepPoint, next int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.leases[id]; !ok {
		return fmt.Errorf("cluster: renew of unknown lease %s", id)
	}
	return l.append(ctx, &leaseEntry{
		Op: "renew", ID: id, Expiry: expiry.UnixNano(),
		Start: start, Points: pts, NextIndex: next,
	}, false)
}

// retire removes jobID's lease (the job reached a terminal state).
func (l *leaseLog) retire(ctx context.Context, id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.leases[id]; !ok {
		return nil
	}
	return l.append(ctx, &leaseEntry{Op: "done", ID: id}, true)
}

// get returns a copy of jobID's lease.
func (l *leaseLog) get(id string) (Lease, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ls, ok := l.leases[id]
	if !ok {
		return Lease{}, false
	}
	cp := *ls
	cp.Points = append([]server.WireSweepPoint(nil), ls.Points...)
	return cp, true
}

// all returns copies of every live lease.
func (l *leaseLog) all() []Lease {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Lease, 0, len(l.leases))
	for _, ls := range l.leases {
		cp := *ls
		cp.Points = append([]server.WireSweepPoint(nil), ls.Points...)
		out = append(out, cp)
	}
	return out
}

func (l *leaseLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func (l *leaseLog) stats() (count int, appends, syncs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.leases), l.appends, l.syncs
}

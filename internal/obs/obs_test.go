package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsNil(t *testing.T) {
	ctx := context.Background()
	if sp := FromContext(ctx); sp != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", sp)
	}
	ctx2, sp := Start(ctx, "work")
	if sp != nil {
		t.Fatalf("Start on bare ctx returned span %v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("Start on bare ctx should return the same ctx")
	}
	// Every method must be a no-op on the nil receiver.
	sp.End()
	sp.SetAttr("k", "v")
	sp.AddInt("n", 3)
	sp.AddEvent("ev", "a", "b")
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan(nil) should return the same ctx")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace("root")
	ctx := tr.Context(context.Background())

	ctx1, a := Start(ctx, "a")
	a.SetAttr("engine", "path-dp")
	a.SetAttr("engine", "flow") // overwrite
	a.AddInt("iters", 2)
	a.AddInt("iters", 3)
	_, b := Start(ctx1, "b")
	b.AddEvent("iter", "lambda", "1/2")
	b.End()
	a.End()
	_, c := Start(ctx, "c")
	c.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Root.Name != "root" || len(snap.Root.Children) != 2 {
		t.Fatalf("unexpected tree: %+v", snap.Root)
	}
	sa := snap.Root.Find("a")
	if sa == nil || sa.Attr("engine") != "flow" || sa.Counter("iters") != 5 {
		t.Fatalf("span a wrong: %+v", sa)
	}
	sb := sa.Find("b")
	if sb == nil || len(sb.Events) != 1 || sb.Events[0].Attrs[0].Value != "1/2" {
		t.Fatalf("span b wrong: %+v", sb)
	}
	if snap.Root.Find("c") == nil {
		t.Fatal("span c missing")
	}
	// Snapshot must be JSON-serializable (the /debug/trace body).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestSpanAndEventCaps(t *testing.T) {
	col := NewCollector(CollectorConfig{Capacity: 4, MaxSpansPerTrace: 3, MaxEventsPerSpan: 2})
	tr := col.NewTrace("capped")
	ctx := tr.Context(context.Background())
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "child")
		sp.End()
	}
	_, _ = Start(ctx, "dropped")
	root := tr.Root()
	for i := 0; i < 5; i++ {
		root.AddEvent("ev")
	}
	tr.Finish()
	snap, ok := col.Get(tr.ID())
	if !ok {
		t.Fatal("trace not retrievable")
	}
	// Root + 2 children = 3 spans; 3 child starts dropped.
	if got := len(snap.Root.Children); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	if snap.DroppedSpans != 4 {
		t.Fatalf("dropped spans = %d, want 4", snap.DroppedSpans)
	}
	if len(snap.Root.Events) != 2 || snap.DroppedEvents != 3 {
		t.Fatalf("events = %d dropped = %d, want 2/3", len(snap.Root.Events), snap.DroppedEvents)
	}
}

func TestCollectorRingEviction(t *testing.T) {
	col := NewCollector(CollectorConfig{Capacity: 2})
	ids := make([]uint64, 3)
	for i := range ids {
		tr := col.NewTrace(fmt.Sprintf("t%d", i))
		ids[i] = tr.ID()
		tr.Finish()
	}
	if _, ok := col.Get(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := col.Get(id); !ok {
			t.Fatalf("trace %d should be retrievable", id)
		}
	}
	st := col.Stats()
	if st.Finished != 3 || st.Buffered != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := col.Get(9999); ok {
		t.Fatal("unknown id should miss")
	}
}

func TestCollectorRetentionExpiry(t *testing.T) {
	col := NewCollector(CollectorConfig{Capacity: 4, Retention: time.Nanosecond})
	tr := col.NewTrace("old")
	tr.Finish()
	time.Sleep(time.Millisecond)
	if _, ok := col.Get(tr.ID()); ok {
		t.Fatal("expired trace should be reported evicted")
	}
	if st := col.Stats(); st.Evicted != 1 || st.Buffered != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
}

func TestWritePrometheus(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	tr := col.NewTrace("req")
	ctx := tr.Context(context.Background())
	_, sp := Start(ctx, "decompose")
	sp.AddInt("iters", 7)
	sp.End()
	tr.Finish()

	var b strings.Builder
	col.WritePrometheus(&b, "irshared_")
	out := b.String()
	for _, want := range []string{
		`irshared_stage_seconds_count{stage="decompose"} 1`,
		`irshared_stage_iterations_count{counter="decompose/iters"} 1`,
		`irshared_span_counter_total{counter="decompose/iters"} 7`,
		"irshared_traces_finished_total 1",
		"irshared_traces_buffered 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestCaptureRecorder(t *testing.T) {
	cap := &Capture{}
	if cap.Last() != nil {
		t.Fatal("fresh Capture should have no trace")
	}
	tr := cap.NewTrace("solve")
	_, sp := Start(tr.Context(context.Background()), "stage")
	sp.End()
	tr.Finish()
	snap := cap.Last()
	if snap == nil || snap.Root.Find("stage") == nil {
		t.Fatalf("capture missing span tree: %+v", snap)
	}
}

// TestConcurrentTracesDoNotInterleave is the recorder-isolation guarantee
// from the issue: concurrent solves sharing one Collector must never leak
// spans across traces. Each goroutine tags its spans with its own worker id
// and then verifies that its finished trace holds exactly its spans.
// Run under -race (ci.sh does).
func TestConcurrentTracesDoNotInterleave(t *testing.T) {
	col := NewCollector(CollectorConfig{Capacity: 64})
	const workers = 16
	var wg sync.WaitGroup
	ids := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := col.NewTrace(fmt.Sprintf("req-%d", w))
			ids[w] = tr.ID()
			ctx := tr.Context(context.Background())
			// Fan out inside the trace too, as par.Map does.
			var inner sync.WaitGroup
			for g := 0; g < 4; g++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for i := 0; i < 50; i++ {
						c, sp := Start(ctx, fmt.Sprintf("stage-%d", w))
						sp.SetAttr("worker", fmt.Sprint(w))
						sp.AddInt("n", 1)
						_, sub := Start(c, fmt.Sprintf("sub-%d", w))
						sub.End()
						sp.End()
					}
				}()
			}
			inner.Wait()
			tr.Finish()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		snap, ok := col.Get(ids[w])
		if !ok {
			t.Fatalf("trace %d missing", ids[w])
		}
		want := fmt.Sprint(w)
		spans := 0
		snap.Root.Walk(func(sp *SpanSnapshot) {
			if sp == snap.Root {
				return
			}
			spans++
			if !strings.HasSuffix(sp.Name, "-"+want) {
				t.Fatalf("trace %d contains foreign span %q", w, sp.Name)
			}
			if v := sp.Attr("worker"); v != "" && v != want {
				t.Fatalf("trace %d span has worker attr %q", w, v)
			}
		})
		if spans != 4*50*2 {
			t.Fatalf("trace %d has %d spans, want %d", w, spans, 4*50*2)
		}
	}
}

func TestFinishIdempotentAndLateSpansDropped(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	tr := col.NewTrace("r")
	tr.Finish()
	tr.Finish()
	if st := col.Stats(); st.Finished != 1 {
		t.Fatalf("double Finish ingested twice: %+v", st)
	}
	_, sp := Start(tr.Context(context.Background()), "late")
	if sp != nil {
		t.Fatal("span started after Finish should be dropped")
	}
}

package obs_test

import (
	"context"
	"testing"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// The obs benchmarks quantify the recorder's cost two ways: the raw price
// of the primitives (Start/End, AddInt) on both the disabled and enabled
// paths, and the end-to-end price of running an instrumented solver with
// and without a trace installed. BENCH_obs.json is generated from this
// file via:
//
//	go run ./cmd/benchjson -bench 'Obs' -pkg ./internal/obs -out BENCH_obs.json

// BenchmarkObsStartDisabled measures the no-trace fast path every solver
// call pays: a context lookup that finds no span and returns nil.
func BenchmarkObsStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.Start(ctx, "bench.span")
		sp.AddInt("work", 1)
		sp.End()
	}
}

// BenchmarkObsStartEnabled measures a recorded span open/count/close cycle
// inside a live trace.
func BenchmarkObsStartEnabled(b *testing.B) {
	tr := obs.NewTrace("bench")
	ctx := tr.Context(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := obs.Start(ctx, "bench.span")
		sp.AddInt("work", 1)
		sp.End()
	}
	b.StopTimer()
	tr.Finish()
}

// benchRing builds a moderately sized asymmetric ring so the decomposition
// does real work (flow oracle + Dinkelbach iterations) per benchmark op.
func benchRing(b *testing.B, n int) *graph.Graph {
	b.Helper()
	ws := make([]numeric.Rat, n)
	for v := range ws {
		ws[v] = numeric.New(int64(1+(v*7)%13), int64(1+v%3))
	}
	return graph.Ring(ws)
}

// BenchmarkObsDecomposeDisabled is the end-to-end baseline: an instrumented
// solver run with no recorder installed (the production default).
func BenchmarkObsDecomposeDisabled(b *testing.B) {
	g := benchRing(b, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bottleneck.DecomposeCtx(ctx, g, bottleneck.EngineAuto); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsDecomposeEnabled is the same solver run with a Capture
// recorder active; comparing against Disabled gives the tracing overhead.
func BenchmarkObsDecomposeEnabled(b *testing.B) {
	g := benchRing(b, 64)
	rec := &obs.Capture{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := rec.NewTrace("bench.decompose")
		ctx := tr.Context(context.Background())
		if _, err := bottleneck.DecomposeCtx(ctx, g, bottleneck.EngineAuto); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Interval is one maximal subinterval ⟨a_i, b_i⟩ of [0, w_v] on which the
// decomposition structure B(x) is constant (Section III-B). Endpoints are
// located by exact bisection to a configurable resolution, so Lo/Hi are
// inner approximations of the true open interval.
type Interval struct {
	Lo, Hi    numeric.Rat
	Signature string
	// Mid is an exact representative, (Lo+Hi)/2.
	Mid numeric.Rat
}

// IntervalPartition locates the structure intervals of agent v's misreport
// curve: grid samples seed a worklist of segments whose endpoint signatures
// differ; each segment is resolved by exact bisection against its left
// signature, which finds the left region's right edge even when several
// regions hide inside one grid cell (the remainder is re-queued). At every
// edge the simplest rational in the bisection bracket (Stern–Brocot) is
// probed: if it carries a third signature it is a singleton interval
// ⟨a_i, a_i⟩ — e.g. the α_v = 1 crossing point x* of Proposition 11 Case
// B-3 — and is emitted as a zero-width Interval.
//
// Signatures are assumed to occupy contiguous x-ranges (they do: each
// structure persists on one interval per Section III-B); a region narrower
// than w_v/(gridN·2^bisectIters) can still evade detection.
func IntervalPartition(g *graph.Graph, v int, gridN, bisectIters int) ([]Interval, error) {
	if gridN < 2 {
		return nil, fmt.Errorf("analysis: grid must have at least 2 cells")
	}
	if bisectIters <= 0 {
		bisectIters = 40
	}
	w := g.Weight(v)
	sigAt := func(x numeric.Rat) (string, error) {
		pt, err := evalReport(g, v, x)
		if err != nil {
			return "", err
		}
		return pt.Signature, nil
	}
	if w.IsZero() {
		sig, err := sigAt(numeric.Zero)
		if err != nil {
			return nil, err
		}
		return []Interval{{Lo: numeric.Zero, Hi: numeric.Zero, Mid: numeric.Zero, Signature: sig}}, nil
	}

	type seg struct {
		x0, x1 numeric.Rat
		s0, s1 string
	}
	var stack []seg
	prevX, prevSig := numeric.Zero, ""
	for i := 0; i <= gridN; i++ {
		x := w.MulInt(int64(i)).DivInt(int64(gridN))
		sig, err := sigAt(x)
		if err != nil {
			return nil, err
		}
		if i > 0 && sig != prevSig {
			stack = append(stack, seg{x0: prevX, x1: x, s0: prevSig, s1: sig})
		}
		prevX, prevSig = x, sig
	}

	type bp struct {
		leftEnd, rightStart numeric.Rat
		singleton           *Interval
	}
	var bps []bp
	const maxRegions = 4096
	for len(stack) > 0 {
		if len(bps) > maxRegions {
			return nil, fmt.Errorf("analysis: more than %d structure regions; giving up", maxRegions)
		}
		sg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi, sigHi := sg.x0, sg.x1, sg.s1
		for it := 0; it < bisectIters; it++ {
			mid := lo.Add(hi).DivInt(2)
			sig, err := sigAt(mid)
			if err != nil {
				return nil, err
			}
			if sig == sg.s0 {
				lo = mid
			} else {
				hi, sigHi = mid, sig
			}
		}
		rec := bp{leftEnd: lo, rightStart: hi}
		if lo.Less(hi) {
			cand := numeric.SimplestBetween(lo, hi)
			sigC, err := sigAt(cand)
			if err != nil {
				return nil, err
			}
			switch sigC {
			case sg.s0:
				rec.leftEnd = cand
			case sigHi:
				rec.rightStart = cand
			default:
				rec.singleton = &Interval{Lo: cand, Hi: cand, Mid: cand, Signature: sigC}
			}
		}
		bps = append(bps, rec)
		if sigHi != sg.s1 {
			stack = append(stack, seg{x0: rec.rightStart, x1: sg.x1, s0: sigHi, s1: sg.s1})
		}
	}
	sort.Slice(bps, func(i, j int) bool { return bps[i].leftEnd.Less(bps[j].leftEnd) })

	var out []Interval
	start := numeric.Zero
	emit := func(lo, hi numeric.Rat) error {
		mid := lo.Add(hi).DivInt(2)
		sig, err := sigAt(mid)
		if err != nil {
			return err
		}
		out = append(out, Interval{Lo: lo, Hi: hi, Mid: mid, Signature: sig})
		return nil
	}
	for _, b := range bps {
		if err := emit(start, b.leftEnd); err != nil {
			return nil, err
		}
		if b.singleton != nil {
			out = append(out, *b.singleton)
		}
		start = b.rightStart
	}
	if err := emit(start, w); err != nil {
		return nil, err
	}
	return out, nil
}

// pairKey canonicalizes a pair's vertex content.
func pairKey(p bottleneck.Pair) string {
	var b strings.Builder
	b.WriteString("B")
	for _, v := range p.B {
		fmt.Fprintf(&b, ",%d", v)
	}
	b.WriteString("|C")
	for _, v := range p.C {
		fmt.Fprintf(&b, ",%d", v)
	}
	return b.String()
}

func unionSorted(a, b []int) []int {
	out := append(append([]int{}, a...), b...)
	sort.Ints(out)
	// Pairs are disjoint, so no dedup is needed; keep it safe anyway.
	uniq := out[:0]
	for i, x := range out {
		if i == 0 || x != out[i-1] {
			uniq = append(uniq, x)
		}
	}
	return uniq
}

func unionPair(p, q bottleneck.Pair) bottleneck.Pair {
	return bottleneck.Pair{B: unionSorted(p.B, q.B), C: unionSorted(p.C, q.C)}
}

func samePairSets(p, q bottleneck.Pair) bool { return pairKey(p) == pairKey(q) }

func selfPaired(p bottleneck.Pair) bool {
	if len(p.B) != len(p.C) {
		return false
	}
	for i := range p.B {
		if p.B[i] != p.C[i] {
			return false
		}
	}
	return true
}

// looseEqual compares pairs up to the α = 1 convention: when a pair's ratio
// reaches 1 the decomposition presents it as a self-pair B = C over the same
// member set, which Proposition 12 still counts as "the same pair".
func looseEqual(p, q bottleneck.Pair) bool {
	if samePairSets(p, q) {
		return true
	}
	if selfPaired(p) || selfPaired(q) {
		up := unionSorted(p.B, p.C)
		uq := unionSorted(q.B, q.C)
		if len(up) != len(uq) {
			return false
		}
		for i := range up {
			if up[i] != uq[i] {
				return false
			}
		}
		return true
	}
	return false
}

// TransitionKind classifies what happens to the pair containing v across a
// breakpoint (Proposition 12 / Fig. 3).
type TransitionKind int

const (
	// TransitionNone: the pair is unchanged (the breakpoint reshuffled
	// other pairs' α-order only — does not occur per Prop 12 but kept for
	// reporting).
	TransitionNone TransitionKind = iota
	// TransitionMerge: v's pair on the left is the union of v's pair and a
	// neighbor pair on the right (the pair decomposed as x grew).
	TransitionMerge
	// TransitionSplit: v's pair on the right is the union of v's pair and a
	// neighbor pair on the left (pairs combined as x grew).
	TransitionSplit
)

// String names the transition.
func (k TransitionKind) String() string {
	switch k {
	case TransitionNone:
		return "none"
	case TransitionMerge:
		return "merge"
	case TransitionSplit:
		return "split"
	}
	return fmt.Sprintf("TransitionKind(%d)", int(k))
}

// VerifyProp12Transition checks Proposition 12 for the decompositions on
// the two sides of one breakpoint: v keeps its class, the pair containing v
// either merges with an adjacent pair or splits into two (one keeping v),
// and every pair not involved appears unchanged on both sides.
func VerifyProp12Transition(left, right *bottleneck.Decomposition, v int) (TransitionKind, error) {
	cl, cr := left.ClassOf(v), right.ClassOf(v)
	classStable := (cl.IsB() && cr.IsB()) || (cl.IsC() && cr.IsC())
	if !classStable {
		return TransitionNone, fmt.Errorf("analysis: Prop 12-(1) violated: class %v → %v", cl, cr)
	}
	pl := left.Pairs[left.PairIndexOf(v)]
	pr := right.Pairs[right.PairIndexOf(v)]

	involvedLeft := map[string]bool{pairKey(pl): true}
	involvedRight := map[string]bool{pairKey(pr): true}
	var kind TransitionKind
	switch {
	case looseEqual(pl, pr):
		kind = TransitionNone
	default:
		kind = 0
		// Split as x grew: pl ∪ (some left neighbor pair) = pr.
		li := left.PairIndexOf(v)
		for _, di := range []int{-1, 1} {
			if j := li + di; j >= 0 && j < len(left.Pairs) {
				if looseEqual(unionPair(pl, left.Pairs[j]), pr) {
					kind = TransitionSplit
					involvedLeft[pairKey(left.Pairs[j])] = true
				}
			}
		}
		// Merge as x grew: pr ∪ (some right neighbor pair) = pl.
		ri := right.PairIndexOf(v)
		for _, di := range []int{-1, 1} {
			if j := ri + di; j >= 0 && j < len(right.Pairs) {
				if looseEqual(unionPair(pr, right.Pairs[j]), pl) {
					kind = TransitionMerge
					involvedRight[pairKey(right.Pairs[j])] = true
				}
			}
		}
		if kind == 0 {
			return TransitionNone, fmt.Errorf("analysis: Prop 12-(2,3) violated: pair %v vs %v is neither a merge nor a split",
				pl, pr)
		}
	}
	// All other pairs must be identical on both sides.
	leftKeys := map[string]bool{}
	for _, p := range left.Pairs {
		if !involvedLeft[pairKey(p)] {
			leftKeys[pairKey(p)] = true
		}
	}
	for _, p := range right.Pairs {
		if involvedRight[pairKey(p)] {
			continue
		}
		if !leftKeys[pairKey(p)] {
			return kind, fmt.Errorf("analysis: Prop 12 violated: uninvolved pair %v appears only on the right", p)
		}
		delete(leftKeys, pairKey(p))
	}
	if len(leftKeys) != 0 {
		return kind, fmt.Errorf("analysis: Prop 12 violated: %d uninvolved pairs vanish across the breakpoint", len(leftKeys))
	}
	return kind, nil
}

// TransitionLog records the Proposition 12 events along a misreport sweep
// (the content of Fig. 3, experiment E3).
type TransitionLog struct {
	Intervals   []Interval
	Transitions []TransitionKind
}

// SweepTransitions partitions [0, w_v] and verifies Proposition 12 at every
// breakpoint, returning the full event log.
func SweepTransitions(g *graph.Graph, v int, gridN, bisectIters int) (*TransitionLog, error) {
	ivs, err := IntervalPartition(g, v, gridN, bisectIters)
	if err != nil {
		return nil, err
	}
	log := &TransitionLog{Intervals: ivs}
	for i := 0; i+1 < len(ivs); i++ {
		dl, err := decAt(g, v, ivs[i].Mid)
		if err != nil {
			return nil, err
		}
		dr, err := decAt(g, v, ivs[i+1].Mid)
		if err != nil {
			return nil, err
		}
		kind, err := VerifyProp12Transition(dl, dr, v)
		if err != nil {
			return nil, fmt.Errorf("breakpoint %d (x ≈ %v): %w", i, ivs[i].Hi, err)
		}
		log.Transitions = append(log.Transitions, kind)
	}
	return log, nil
}

func decAt(g *graph.Graph, v int, x numeric.Rat) (*bottleneck.Decomposition, error) {
	gp := g.Clone()
	gp.MustSetWeight(v, x)
	return bottleneck.Decompose(gp)
}

// VerifyAlphaContinuity checks the α-coincidence Fig. 3 asserts at every
// breakpoint: α_v(x) is continuous across the interval boundary — the
// merged pair's ratio at the breakpoint matches the limits of the split
// pairs' ratios from both sides. Exact verification needs the exact
// breakpoint; IntervalPartition's inner endpoints bracket it to within
// 2^-bisectIters, so the check evaluates α_v at both bracket ends and at
// the simplest rational between them (the breakpoint itself when the snap
// succeeds) and demands |α_left − α_right| shrink below tol while the
// snapped point's α lies weakly between the two.
func VerifyAlphaContinuity(g *graph.Graph, v int, ivs []Interval, tol float64) error {
	for i := 0; i+1 < len(ivs); i++ {
		lo, hi := ivs[i].Hi, ivs[i+1].Lo
		ptL, err := evalReport(g, v, lo)
		if err != nil {
			return err
		}
		ptR, err := evalReport(g, v, hi)
		if err != nil {
			return err
		}
		aL, aR := ptL.Alpha.Float64(), ptR.Alpha.Float64()
		gap := aR - aL
		if gap < 0 {
			gap = -gap
		}
		if gap > tol {
			return fmt.Errorf("analysis: α_v jumps by %v across breakpoint near %v (Fig. 3 coincidence violated)", gap, lo)
		}
		if lo.Less(hi) {
			mid := numeric.SimplestBetween(lo, hi)
			ptM, err := evalReport(g, v, mid)
			if err != nil {
				return err
			}
			aM := ptM.Alpha.Float64()
			loA, hiA := aL, aR
			if loA > hiA {
				loA, hiA = hiA, loA
			}
			if aM < loA-tol || aM > hiA+tol {
				return fmt.Errorf("analysis: α_v(%v) = %v outside its bracket [%v, %v]", mid, aM, loA, hiA)
			}
		}
	}
	return nil
}

// VerifyLemma13 checks, for an interval [a, b] on which v stays in one
// class, that the pairs on the protected side of α_v are not impacted:
// if v is C class, pairs of B(a) with α < α_v(a) survive into B(b)
// unchanged; if v is B class, pairs of B(a) with α > α_v(a) survive.
func VerifyLemma13(g *graph.Graph, v int, a, b numeric.Rat) error {
	da, err := decAt(g, v, a)
	if err != nil {
		return err
	}
	db, err := decAt(g, v, b)
	if err != nil {
		return err
	}
	ca, cb := da.ClassOf(v), db.ClassOf(v)
	if !(ca.IsB() && cb.IsB()) && !(ca.IsC() && cb.IsC()) {
		return fmt.Errorf("analysis: Lemma 13 precondition fails: class %v at a, %v at b", ca, cb)
	}
	alphaV := da.AlphaOf(v)
	inB := map[string]bool{}
	for _, p := range db.Pairs {
		inB[pairKey(p)] = true
	}
	for _, p := range da.Pairs {
		protected := false
		if ca.IsC() && p.Alpha.Less(alphaV) {
			protected = true
		}
		if ca.IsB() && alphaV.Less(p.Alpha) {
			protected = true
		}
		if protected && !inB[pairKey(p)] {
			return fmt.Errorf("analysis: Lemma 13 violated: protected pair %v (α=%v) impacted", p, p.Alpha)
		}
	}
	return nil
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cert"
	"repro/internal/cert/enum"
)

// certTestRing is the fixed instance of the certificate wire tests: five
// vertices, mixed weights, a non-trivial piecewise optimum.
var certTestRing = WireGraph{Ring: []string{"3", "1", "2", "1", "5"}}

// TestGoldenCertWireFormat pins the ?cert=1 wire format of /v1/ratio and
// /v1/sweep, plus the structured cert_limit and cert_invalid errors. The
// certificate bodies are deterministic — the builder emits flow witnesses
// in canonical edge order — so byte-exact golden files work.
func TestGoldenCertWireFormat(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	// The corruption hook forges the final ratio on demand; the server's
	// solver-free self-check must catch it and answer cert_invalid instead
	// of shipping the forged certificate.
	corrupt := false
	srv.corruptCert = func(c any) {
		if !corrupt {
			return
		}
		switch cc := c.(type) {
		case *cert.RatioCert:
			cc.Ratio = "3"
			cc.LeqTwo = false
		case *cert.SweepCert:
			cc.Ratio = "3"
			cc.LeqTwo = false
		}
	}

	cases := []struct {
		name    string
		path    string
		body    any
		status  int
		corrupt bool
	}{
		{"ratio_cert", "/v1/ratio?cert=1", RatioRequest{Graph: certTestRing, V: 0, Grid: 8}, http.StatusOK, false},
		{"sweep_cert", "/v1/sweep?cert=1", SweepRequest{Graph: certTestRing, V: 0, Grid: 4}, http.StatusOK, false},
		{"error_cert_limit", "/v1/sweep?cert=1", SweepRequest{Graph: certTestRing, V: 0, Grid: maxCertSweepGrid + 1}, http.StatusBadRequest, false},
		{"error_cert_invalid_ratio", "/v1/ratio?cert=1", RatioRequest{Graph: certTestRing, V: 1, Grid: 8}, http.StatusInternalServerError, true},
		{"error_cert_invalid_sweep", "/v1/sweep?cert=1", SweepRequest{Graph: certTestRing, V: 1, Grid: 4}, http.StatusInternalServerError, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupt = tc.corrupt
			defer func() { corrupt = false }()
			status, raw := postJSON(t, ts.URL, tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, raw)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("wire format drifted from %s:\ngot:  %swant: %s", path, raw, want)
			}
		})
	}
}

// TestCertBodyFlagMatchesQueryParam: the cert opt-in is accepted both as
// the ?cert=1 query parameter and as the request-body flag, with
// bit-identical answers.
func TestCertBodyFlagMatchesQueryParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, viaQuery := postJSON(t, ts.URL, "/v1/ratio?cert=1", RatioRequest{Graph: certTestRing, V: 2, Grid: 8})
	_, viaBody := postJSON(t, ts.URL, "/v1/ratio", RatioRequest{Graph: certTestRing, V: 2, Grid: 8, Cert: true})
	if !bytes.Equal(viaQuery, viaBody) {
		t.Fatalf("query and body opt-in disagree:\n%s\n%s", viaQuery, viaBody)
	}
	_, plain := postJSON(t, ts.URL, "/v1/ratio", RatioRequest{Graph: certTestRing, V: 2, Grid: 8})
	var resp RatioResponse
	if err := json.Unmarshal(plain, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Certificate != nil {
		t.Fatal("certificate present without opt-in")
	}
}

// TestCertVerifiesClientSide is the trust story end to end: the wire
// certificate re-verifies with the dependency-free checker on the client
// side, agrees with the response's headline numbers, and any tampering is
// caught by that same checker.
func TestCertVerifiesClientSide(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var rresp RatioResponse
	mustPost(t, ts.URL, "/v1/ratio?cert=1", RatioRequest{Graph: certTestRing, V: 1, Grid: 8}, &rresp)
	rc := rresp.Certificate
	if rc == nil {
		t.Fatal("no ratio certificate")
	}
	if err := cert.Check(rc); err != nil {
		t.Fatalf("client-side re-check: %v", err)
	}
	if rc.Honest != rresp.Honest || rc.Ratio != rresp.Ratio || rc.Best.W1 != rresp.BestW1 || rc.Best.U != rresp.BestU {
		t.Fatalf("certificate disagrees with response: %+v vs honest=%s ratio=%s", rc, rresp.Honest, rresp.Ratio)
	}
	forged := *rc
	forged.Ratio = "2"
	forged.LeqTwo = true
	if err := cert.Check(&forged); err == nil {
		t.Fatal("forged ratio passed the checker")
	}

	var sresp SweepResponse
	mustPost(t, ts.URL, "/v1/sweep?cert=1", SweepRequest{Graph: certTestRing, V: 1, Grid: 6}, &sresp)
	sc := sresp.Certificate
	if sc == nil {
		t.Fatal("no sweep certificate")
	}
	if err := cert.Check(sc); err != nil {
		t.Fatalf("client-side re-check: %v", err)
	}
	if sc.Honest != sresp.Honest || sc.Ratio != sresp.Ratio {
		t.Fatalf("sweep certificate disagrees with response")
	}
	if len(sc.Points) != len(sresp.Points) {
		t.Fatalf("sweep certificate covers %d points, response has %d", len(sc.Points), len(sresp.Points))
	}
	for i, p := range sresp.Points {
		if sc.Points[i].W1 != p.W1 || sc.Points[i].U != p.U {
			t.Fatalf("point %d: certificate (%s,%s) vs response (%s,%s)", i, sc.Points[i].W1, sc.Points[i].U, p.W1, p.U)
		}
	}
}

// TestCertRingSizeLimit: ?cert=1 on a ring above maxCertRingSize is a 400
// cert_limit before any computation is admitted.
func TestCertRingSizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	big := WireGraph{Ring: make([]string, maxCertRingSize+1)}
	for i := range big.Ring {
		big.Ring[i] = "1"
	}
	status, raw := postJSON(t, ts.URL, "/v1/ratio?cert=1", RatioRequest{Graph: big, V: 0, Grid: 4})
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest || er.Code != CodeCertLimit {
		t.Fatalf("got %d %s, want 400 %s", status, er.Code, CodeCertLimit)
	}
	// Without the cert flag the same ring is served normally.
	var resp RatioResponse
	mustPost(t, ts.URL, "/v1/ratio", RatioRequest{Graph: big, V: 0, Grid: 4}, &resp)
	if resp.Ratio == "" {
		t.Fatal("plain ratio request on the large ring failed")
	}
}

// TestEnumerateJob runs the exhaustive small-n certification as a durable
// job: every canonical ring with n ∈ [3,4] and weights in {1,2} is solved,
// certified, and checkpointed; the final Result is the enum.Summary with
// zero failures and a max ratio within the Theorem 8 bound.
func TestEnumerateJob(t *testing.T) {
	_, ts := jobsTestServer(t)
	req := JobSubmitRequest{Kind: "enumerate", Enum: &EnumJobRequest{MinN: 3, MaxN: 4, Levels: 2, Grid: 4, Eps: "3/5"}}

	resp, body := jobsPost(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.Kind != "enumerate" {
		t.Fatalf("kind %q", sub.Job.Kind)
	}
	wantTotal, err := enum.Count(enum.Options{MinN: 3, MaxN: 4, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Job.TotalPoints != wantTotal {
		t.Fatalf("TotalPoints %d, want %d", sub.Job.TotalPoints, wantTotal)
	}

	job := waitJobState(t, ts.URL, sub.Job.ID, "done")
	var sum enum.Summary
	if err := json.Unmarshal(job.Result, &sum); err != nil {
		t.Fatalf("result is not an enum.Summary: %v\n%s", err, job.Result)
	}
	if sum.Instances != wantTotal || sum.Certified != wantTotal {
		t.Fatalf("certified %d of %d (want %d)", sum.Certified, sum.Instances, wantTotal)
	}
	if len(sum.Failures) != 0 {
		t.Fatalf("failures: %+v", sum.Failures)
	}
	if sum.MaxRatio == "" || sum.MaxKey == "" {
		t.Fatalf("summary missing max: %+v", sum)
	}

	// The detail view exposes per-instance outcomes as (key, ratio) points.
	var detail WireJob
	jobsGet(t, ts.URL+"/v1/jobs/"+sub.Job.ID, &detail)
	if len(detail.Points) != wantTotal {
		t.Fatalf("detail has %d points, want %d", len(detail.Points), wantTotal)
	}
	if detail.Points[0].W1 != "r3:1,1,1" {
		t.Fatalf("first enumerated instance %q, want r3:1,1,1", detail.Points[0].W1)
	}

	// Resubmission dedupes: enumerate jobs are content-addressed too.
	resp, body = jobsPost(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var again JobSubmitResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.Job.ID != sub.Job.ID {
		t.Fatalf("resubmission not deduped: %+v", again)
	}
}

// TestEnumerateJobValidation covers the submit-side rejections: unknown
// kind, explosive bounds, and malformed eps.
func TestEnumerateJobValidation(t *testing.T) {
	_, ts := jobsTestServer(t)
	cases := []struct {
		name string
		req  JobSubmitRequest
		code string
	}{
		{"unknown_kind", JobSubmitRequest{Kind: "quantum"}, CodeBadBody},
		{"explosive_bounds", JobSubmitRequest{Kind: "enumerate", Enum: &EnumJobRequest{MaxN: 9}}, CodeCertLimit},
		{"too_many_levels", JobSubmitRequest{Kind: "enumerate", Enum: &EnumJobRequest{Levels: 5}}, CodeCertLimit},
		{"absurd_bounds", JobSubmitRequest{Kind: "enumerate", Enum: &EnumJobRequest{MaxN: 11}}, CodeBadBody},
		{"bad_eps", JobSubmitRequest{Kind: "enumerate", Enum: &EnumJobRequest{Eps: "-1/2"}}, CodeBadBody},
		{"bad_grid", JobSubmitRequest{Kind: "enumerate", Enum: &EnumJobRequest{Grid: 5000}}, CodeBadGrid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := jobsPost(t, ts.URL+"/v1/jobs", tc.req)
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest || er.Code != tc.code {
				t.Fatalf("got %d %s, want 400 %s (%s)", resp.StatusCode, er.Code, tc.code, body)
			}
		})
	}
}

package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/numeric"
)

func TestSplitValidation(t *testing.T) {
	g := Ring(numeric.Ints(2, 1, 1, 1))
	cases := []struct {
		name string
		sp   SplitSpec
	}{
		{"bad vertex", SplitSpec{V: 9, Parts: [][]int{{1}}, Weights: numeric.Ints(2)}},
		{"empty parts", SplitSpec{V: 0, Parts: nil, Weights: nil}},
		{"mismatched lengths", SplitSpec{V: 0, Parts: [][]int{{1}, {3}}, Weights: numeric.Ints(2)}},
		{"too many identities", SplitSpec{V: 0, Parts: [][]int{{1}, {3}, {1}}, Weights: numeric.Ints(1, 1, 0)}},
		{"empty part", SplitSpec{V: 0, Parts: [][]int{{1, 3}, {}}, Weights: numeric.Ints(1, 1)}},
		{"non-neighbor", SplitSpec{V: 0, Parts: [][]int{{1}, {2}}, Weights: numeric.Ints(1, 1)}},
		{"duplicate neighbor", SplitSpec{V: 0, Parts: [][]int{{1}, {1}}, Weights: numeric.Ints(1, 1)}},
		{"uncovered neighbor", SplitSpec{V: 0, Parts: [][]int{{1}}, Weights: numeric.Ints(2)}},
		{"weights do not sum", SplitSpec{V: 0, Parts: [][]int{{1}, {3}}, Weights: numeric.Ints(1, 2)}},
		{"negative weight", SplitSpec{V: 0, Parts: [][]int{{1}, {3}}, Weights: []numeric.Rat{numeric.FromInt(3), numeric.FromInt(-1)}}},
	}
	for _, c := range cases {
		if _, _, err := Split(g, c.sp); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSplitRingIntoPath(t *testing.T) {
	// Ring 0-1-2-3-0; split 0 into two identities.
	g := Ring(numeric.Ints(10, 1, 2, 3))
	sp := SplitSpec{
		V:       0,
		Parts:   [][]int{{1}, {3}},
		Weights: []numeric.Rat{numeric.FromInt(4), numeric.FromInt(6)},
	}
	out, ids, err := Split(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != 5 || !reflect.DeepEqual(ids, []int{0, 4}) {
		t.Fatalf("N=%d ids=%v", out.N(), ids)
	}
	if !out.IsPath() {
		t.Fatal("split of ring at one vertex should yield a path")
	}
	if !out.Weight(0).Equal(numeric.FromInt(4)) || !out.Weight(4).Equal(numeric.FromInt(6)) {
		t.Fatalf("identity weights: %v, %v", out.Weight(0), out.Weight(4))
	}
	// Other weights survive.
	for v := 1; v <= 3; v++ {
		if !out.Weight(v).Equal(g.Weight(v)) {
			t.Errorf("weight of %d changed", v)
		}
	}
	if !out.HasEdge(0, 1) || !out.HasEdge(4, 3) || out.HasEdge(0, 3) {
		t.Fatalf("rewiring wrong: %v", out.Edges())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitThreeWay(t *testing.T) {
	// Star with center 0 and 3 leaves; split center into 3 identities.
	g := Star(numeric.Ints(6, 1, 1, 1))
	sp := SplitSpec{
		V:       0,
		Parts:   [][]int{{1}, {2}, {3}},
		Weights: numeric.Ints(1, 2, 3),
	}
	out, ids, err := Split(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != 6 || len(ids) != 3 {
		t.Fatalf("N=%d ids=%v", out.N(), ids)
	}
	// Result: three disjoint edges.
	if out.M() != 3 {
		t.Fatalf("M=%d", out.M())
	}
	comps := out.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
}

func TestTwoSplitOnRing(t *testing.T) {
	g := Ring(numeric.Ints(5, 1, 2, 3, 4))
	path, order, v1, v2, err := TwoSplitOnRing(g, 0, numeric.FromInt(2), numeric.FromInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if !path.IsPath() {
		t.Fatal("not a path")
	}
	if len(order) != path.N() {
		t.Fatalf("order length %d vs N %d", len(order), path.N())
	}
	if order[0] != v1 || order[len(order)-1] != v2 {
		t.Fatalf("order endpoints %v, v1=%d v2=%d", order, v1, v2)
	}
	for i := 0; i+1 < len(order); i++ {
		if !path.HasEdge(order[i], order[i+1]) {
			t.Fatalf("order %v not a path at %d", order, i)
		}
	}
	if path.Degree(v1) != 1 || path.Degree(v2) != 1 {
		t.Fatal("identities must be leaves")
	}
	if !path.Weight(v1).Equal(numeric.FromInt(2)) || !path.Weight(v2).Equal(numeric.FromInt(3)) {
		t.Fatal("leaf weights wrong")
	}
	if _, _, _, _, err := TwoSplitOnRing(Path(numeric.Ints(1, 1)), 0, numeric.Zero, numeric.One); err == nil {
		t.Error("TwoSplitOnRing should reject non-rings")
	}
}

func TestTwoSplitOnRingPreservesTotalWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10) + 3
		g := RandomRing(rng, n, DistUniform)
		v := rng.Intn(n)
		wv := g.Weight(v)
		w1 := wv.DivInt(3)
		w2 := wv.Sub(w1)
		path, _, _, _, err := TwoSplitOnRing(g, v, w1, w2)
		if err != nil {
			t.Fatal(err)
		}
		if !path.TotalWeight().Equal(g.TotalWeight()) {
			t.Fatalf("total weight changed: %v -> %v", g.TotalWeight(), path.TotalWeight())
		}
	}
}

#!/bin/sh
# Repository gate: build, vet, and the full test suite under the race
# detector (the incremental split engine and the parallel decomposition are
# exercised concurrently by their tests). Run from the repo root:
#
#	./ci.sh
set -eux

go build ./...
go vet ./...
go test -race ./...

package repro

import (
	"context"
	"fmt"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/cert"
	"repro/internal/cert/build"
	"repro/internal/core"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/sybil"
)

// MechanismInfo describes one registered allocation-mechanism backend; see
// Mechanisms and WithMechanism.
type MechanismInfo = mechanism.Info

// Mechanisms lists every registered allocation-mechanism backend in sorted
// name order (byte-stable regardless of registration order). Any listed
// name is a valid WithMechanism argument; the capability flags say which
// facade calls it supports beyond Allocate.
func Mechanisms() []MechanismInfo { return mechanism.Infos() }

// Engine selects the bottleneck decomposition algorithm.
type Engine = bottleneck.Engine

// Engine values for WithEngine.
const (
	// EngineAuto picks the path/cycle DP where the graph allows it and the
	// parametric max-flow oracle otherwise (the default).
	EngineAuto = bottleneck.EngineAuto
	// EngineFlow forces the parametric max-flow oracle.
	EngineFlow = bottleneck.EngineFlow
	// EnginePathDP forces the path/cycle dynamic program.
	EnginePathDP = bottleneck.EnginePathDP
	// EngineBrute forces the exponential reference oracle (tiny graphs).
	EngineBrute = bottleneck.EngineBrute
)

// Observability types, re-exported from the internal recorder so library
// callers can trace solves without importing internal packages.
type (
	// Recorder mints span traces; pass one via WithRecorder to record a
	// facade call's full solver span tree.
	Recorder = obs.Recorder
	// TraceCapture is the minimal Recorder: it retains the last finished
	// trace, retrievable with its Last method.
	TraceCapture = obs.Capture
	// TraceSnapshot is the immutable span tree of a finished trace.
	TraceSnapshot = obs.TraceSnapshot
	// SpanSnapshot is one node of a TraceSnapshot.
	SpanSnapshot = obs.SpanSnapshot
)

// Certificate re-exports and helpers: the exact-rational certificates of
// internal/cert, verifiable with the solver-free checker without trusting
// (or re-running) any solver code.
type (
	// DecompositionCertificate proves a bottleneck decomposition: cover
	// structure, per-pair Hall-condition flow witnesses, utilities.
	DecompositionCertificate = cert.DecompositionCert
	// RatioCertificate proves an incentive-ratio answer end to end,
	// including the Theorem 8 bound ratio ≤ 2.
	RatioCertificate = cert.RatioCert
	// SweepCertificate proves a split-utility sweep segment.
	SweepCertificate = cert.SweepCert
	// CheckableCertificate is any certificate CheckCertificate accepts.
	CheckableCertificate = cert.Checkable
)

// CheckCertificate re-verifies a certificate in O(|certificate|) exact
// arithmetic, without invoking any solver code. It is the trust boundary:
// a certificate that passes proves its claims regardless of where it came
// from.
func CheckCertificate(c CheckableCertificate) error { return cert.Check(c) }

// Certificate receives the certificates of one facade call made with
// WithCertificate. Only the field matching the call is populated:
// Decomposition by Decompose, Ratio by IncentiveRatio, Sweep by RingSweep.
// Every populated certificate has already passed CheckCertificate.
type Certificate struct {
	Decomposition *DecompositionCertificate
	Ratio         *RatioCertificate
	Sweep         *SweepCertificate
}

// Option configures one facade call (Decompose, Allocate, IncentiveRatio,
// RingSweep). Options that a call does not use are ignored, so a shared
// option slice can be reused across calls.
type Option func(*callOptions)

type callOptions struct {
	engine   Engine
	workers  int
	parallel bool
	grid     int
	rec      Recorder
	dec      *Decomposition
	cert     *Certificate
	mech     string
}

func gatherOptions(opts []Option) callOptions {
	var o callOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// traced installs a fresh trace from the call's recorder (if any) into ctx;
// the returned finish must be called when the facade call ends.
func (o callOptions) traced(ctx context.Context, name string) (context.Context, func()) {
	if o.rec == nil {
		return ctx, func() {}
	}
	tr := o.rec.NewTrace(name)
	return tr.Context(ctx), tr.Finish
}

// WithEngine selects the decomposition engine (default EngineAuto).
func WithEngine(e Engine) Option {
	return func(o *callOptions) { o.engine = e }
}

// WithWorkers bounds the call's parallelism (n ≤ 0 = GOMAXPROCS). For
// Decompose and Allocate it additionally enables per-component parallel
// decomposition; for IncentiveRatio and RingSweep it bounds the evaluation
// workers.
func WithWorkers(n int) Option {
	return func(o *callOptions) { o.workers = n; o.parallel = true }
}

// WithGrid sets the optimizer/sweep grid resolution (0 = the documented
// default of the underlying solver). Used by IncentiveRatio and RingSweep.
func WithGrid(n int) Option {
	return func(o *callOptions) { o.grid = n }
}

// WithRecorder records the call as a span tree minted from r: solver stages,
// per-iteration Dinkelbach events, max-flow calls and cache counters all
// land in one trace. Results are bit-identical with and without a recorder.
func WithRecorder(r Recorder) Option {
	return func(o *callOptions) { o.rec = r }
}

// WithDecomposition supplies a precomputed decomposition so Allocate skips
// its own Decompose step.
func WithDecomposition(d *Decomposition) Option {
	return func(o *callOptions) { o.dec = d }
}

// WithMechanism selects the allocation-mechanism backend by registry name
// (see Mechanisms). The default, "bd", is the paper's BD Allocation
// Mechanism and is bit-identical to omitting the option. Alternative
// backends answer Allocate, IncentiveRatio (empirical grid ratio) and
// RingSweep; bottleneck decomposition and exact-rational certificates are
// BD-only capabilities, so Decompose or WithCertificate under a mechanism
// lacking them returns an error rather than an answer of the wrong kind.
func WithMechanism(name string) Option {
	return func(o *callOptions) { o.mech = name }
}

// WithCertificate asks the call to also build an exact-rational certificate
// of its answer into dst (the field matching the call; see Certificate).
// The certificate is self-checked with CheckCertificate before the call
// returns — a facade answer never ships with an unverified certificate —
// and can be re-checked at any time, serialized, or handed to a third
// party. Answers are bit-identical with and without certification; the
// extra cost is the builder's witness flows. A nil dst disables the option.
func WithCertificate(dst *Certificate) Option {
	return func(o *callOptions) { o.cert = dst }
}

// selfCheck gates every facade-built certificate behind the solver-free
// checker before it reaches the caller.
func selfCheck(c CheckableCertificate, err error) error {
	if err != nil {
		return err
	}
	if err := cert.Check(c); err != nil {
		return fmt.Errorf("repro: built certificate failed its self-check: %w", err)
	}
	return nil
}

// mechanismOf resolves the call's backend against the registry ("" = bd).
func (o callOptions) mechanismOf() (mechanism.Mechanism, error) {
	return mechanism.Get(o.mech)
}

// certifiable reports whether the call's backend can ship certificates.
func certifiable(m mechanism.Mechanism) bool {
	c, ok := m.(mechanism.Certifier)
	return ok && c.Certifiable()
}

// errCertMechanism is the facade-level counterpart of the wire cert_limit:
// a certificate was requested from a backend that cannot prove its answers.
func errCertMechanism(m mechanism.Mechanism) error {
	return fmt.Errorf("repro: certificates are only available for certifiable mechanisms (bd), not %q", m.Name())
}

// decompose is the one shared decomposition path of the facade, routed
// through the mechanism registry: the backend must expose the Decomposer
// capability (today, only bd). The bd path dispatches to the exact same
// bottleneck solvers as before the registry existed.
func (o callOptions) decompose(ctx context.Context, g *Graph) (*Decomposition, error) {
	m, err := o.mechanismOf()
	if err != nil {
		return nil, err
	}
	dec, ok := m.(mechanism.Decomposer)
	if !ok {
		return nil, fmt.Errorf("repro: mechanism %q does not expose a bottleneck decomposition", m.Name())
	}
	if o.parallel {
		if pd, ok := m.(interface {
			DecomposeParallel(context.Context, *Graph, Engine, int) (*Decomposition, error)
		}); ok {
			return pd.DecomposeParallel(ctx, g, o.engine, o.workers)
		}
	}
	return dec.Decompose(ctx, g, o.engine)
}

// Decompose computes the bottleneck decomposition of g (Definition 2). The
// context carries cancellation and, via WithRecorder, tracing; WithEngine
// selects the solver and WithWorkers enables per-component parallelism.
// Every engine and worker configuration returns bit-identical results.
func Decompose(ctx context.Context, g *Graph, opts ...Option) (*Decomposition, error) {
	o := gatherOptions(opts)
	ctx, finish := o.traced(ctx, "repro.decompose")
	defer finish()
	d, err := o.decompose(ctx, g)
	if err != nil {
		return nil, err
	}
	if o.cert != nil {
		dc, err := build.Decomposition(ctx, g, d)
		if err := selfCheck(dc, err); err != nil {
			return nil, err
		}
		o.cert.Decomposition = dc
	}
	return d, nil
}

// Allocate computes the selected mechanism's allocation of g. The default
// backend is the BD Allocation Mechanism (Definition 5): the exact
// equilibrium allocation of the proportional response dynamics, decomposing
// g itself (honoring WithEngine/WithWorkers) unless WithDecomposition
// supplies a precomputed decomposition. WithMechanism swaps in an
// alternative backend, which allocates directly (no decomposition stage, so
// WithDecomposition is rejected).
func Allocate(ctx context.Context, g *Graph, opts ...Option) (*Allocation, error) {
	o := gatherOptions(opts)
	ctx, finish := o.traced(ctx, "repro.allocate")
	defer finish()
	m, err := o.mechanismOf()
	if err != nil {
		return nil, err
	}
	if _, ok := m.(mechanism.Decomposer); !ok {
		if o.dec != nil {
			return nil, fmt.Errorf("repro: WithDecomposition requires a decomposition-based mechanism, not %q", m.Name())
		}
		return m.Allocate(ctx, g)
	}
	d := o.dec
	if d == nil {
		if d, err = o.decompose(ctx, g); err != nil {
			return nil, err
		}
	}
	return allocation.Compute(g, d)
}

// IncentiveRatio returns ζ_v: agent v's best Sybil gain factor on ring g,
// exactly evaluated by the certified piecewise optimizer (Theorem 8
// guarantees ζ_v ≤ 2). WithGrid tunes the optimizer's seed grid and
// WithWorkers its parallel evaluation; the result is bit-identical for
// every configuration.
func IncentiveRatio(ctx context.Context, g *Graph, v int, opts ...Option) (Rat, error) {
	o := gatherOptions(opts)
	ctx, finish := o.traced(ctx, "repro.incentive_ratio")
	defer finish()
	m, err := o.mechanismOf()
	if err != nil {
		return Rat{}, err
	}
	if o.cert != nil && !certifiable(m) {
		return Rat{}, errCertMechanism(m)
	}
	ro, ok := m.(mechanism.RingOptimizer)
	if !ok {
		// No exact optimizer for this backend: the ratio is the empirical
		// best over the sweep grid (WithGrid; default 64).
		res, err := mechanism.RingSweep(ctx, m, g, v, sybil.SweepOptions{Grid: o.grid, Workers: o.workers})
		if err != nil {
			return Rat{}, err
		}
		return res.Ratio, nil
	}
	if o.cert == nil {
		opt, err := ro.OptimizeRing(ctx, g, v, core.OptimizeOptions{Grid: o.grid, Workers: o.workers})
		if err != nil {
			return Rat{}, err
		}
		return opt.Ratio, nil
	}
	// The certified path runs the identical instance + optimizer pipeline,
	// keeping the intermediate results the builder needs.
	in, err := core.NewInstanceCtx(ctx, g, v)
	if err != nil {
		return Rat{}, err
	}
	opt, err := in.OptimizeCtx(ctx, core.OptimizeOptions{Grid: o.grid, Workers: o.workers})
	if err != nil {
		return Rat{}, err
	}
	rc, err := build.Ratio(ctx, in, opt)
	if err := selfCheck(rc, err); err != nil {
		return Rat{}, err
	}
	o.cert.Ratio = rc
	return opt.Ratio, nil
}

// SweepOptions tunes the low-level sybil sweep; SweepPoint and SweepResult
// are its exactly evaluated samples and outcome.
type (
	SweepOptions = sybil.SweepOptions
	SweepPoint   = sybil.SweepPoint
	SweepResult  = sybil.SweepResult
)

// RingSweep evaluates agent v's two-identity split utility curve on ring g
// at WithGrid+1 evenly spaced points (default grid 64), sharing one solver
// instance so the incremental split engine is reused across the curve.
func RingSweep(ctx context.Context, g *Graph, v int, opts ...Option) (*SweepResult, error) {
	o := gatherOptions(opts)
	ctx, finish := o.traced(ctx, "repro.ring_sweep")
	defer finish()
	m, err := o.mechanismOf()
	if err != nil {
		return nil, err
	}
	if o.cert != nil && !certifiable(m) {
		return nil, errCertMechanism(m)
	}
	res, err := mechanism.RingSweep(ctx, m, g, v, sybil.SweepOptions{Grid: o.grid, Workers: o.workers})
	if err != nil {
		return nil, err
	}
	if o.cert != nil && !res.Partial && len(res.Points) > 0 {
		grid := o.grid
		if grid <= 0 {
			grid = 64 // sybil's documented default
		}
		in, err := core.NewInstanceCtx(ctx, g, v)
		if err != nil {
			return nil, err
		}
		sc, err := build.Sweep(ctx, in, res, grid)
		if err := selfCheck(sc, err); err != nil {
			return nil, err
		}
		o.cert.Sweep = sc
	}
	return res, nil
}

package sybil

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestRingSweepWarmColdParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(5) + 5
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(4)))
		v := rng.Intn(n)
		warm, err := RingSweep(g, v, SweepOptions{Grid: 24})
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		cold, err := RingSweep(g, v, SweepOptions{Grid: 24, Cold: true})
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		if len(warm.Points) != len(cold.Points) {
			t.Fatalf("trial %d: point counts differ", trial)
		}
		for i := range warm.Points {
			if !warm.Points[i].W1.Equal(cold.Points[i].W1) || !warm.Points[i].U.Equal(cold.Points[i].U) {
				t.Fatalf("trial %d point %d: warm (%v, %v) != cold (%v, %v)",
					trial, i, warm.Points[i].W1, warm.Points[i].U, cold.Points[i].W1, cold.Points[i].U)
			}
		}
		if !warm.BestU.Equal(cold.BestU) || !warm.Ratio.Equal(cold.Ratio) {
			t.Fatalf("trial %d: best/ratio differ", trial)
		}
		if cold.Stats.Solver.Evals != 0 {
			t.Fatalf("trial %d: cold sweep used the incremental solver: %+v", trial, cold.Stats)
		}
	}
}

func TestRingSweepTracksOptimizer(t *testing.T) {
	// The sweep's best sampled ratio is a lower bound on the optimizer's
	// certified ratio, and with the optimizer's own grid it must agree with
	// the grid phase: both stay ≤ 2 (Theorem 8).
	g, v, err := core.LowerBoundFamily(2, numeric.FromInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RingSweep(g, v, SweepOptions{Grid: 32})
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := core.RingRatio(g, v, core.OptimizeOptions{Grid: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Less(sw.Ratio) {
		t.Fatalf("sweep ratio %v exceeds optimizer's certified %v", sw.Ratio, ratio)
	}
	if numeric.Two.Less(sw.Ratio) {
		t.Fatalf("sweep ratio %v exceeds 2", sw.Ratio)
	}
	if sw.Stats.Solver.Evals == 0 || sw.Stats.Solver.TransferHits == 0 {
		t.Fatalf("sweep did not exercise the incremental solver: %+v", sw.Stats)
	}
	if sw.Honest.Sign() <= 0 {
		t.Fatalf("unexpected honest utility %v", sw.Honest)
	}
}

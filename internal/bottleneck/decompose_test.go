package bottleneck

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func mustDecompose(t *testing.T, g *graph.Graph, e Engine) *Decomposition {
	t.Helper()
	d, err := DecomposeWith(g, e)
	if err != nil {
		t.Fatalf("DecomposeWith(%v): %v", e, err)
	}
	return d
}

func TestFig1Decomposition(t *testing.T) {
	// The paper's Fig. 1: (B1, C1) = ({v1, v2}, {v3}) with α1 = 1/3 and
	// (B2, C2) = ({v4, v5, v6}, {v4, v5, v6}) with α2 = 1.
	g := graph.Fig1Graph()
	for _, e := range []Engine{EngineFlow, EngineBrute} {
		d := mustDecompose(t, g, e)
		if len(d.Pairs) != 2 {
			t.Fatalf("%v: got %d pairs: %v", e, len(d.Pairs), d)
		}
		if !reflect.DeepEqual(d.Pairs[0].B, []int{0, 1}) || !reflect.DeepEqual(d.Pairs[0].C, []int{2}) {
			t.Errorf("%v: pair 1 = %v", e, d.Pairs[0])
		}
		if !d.Pairs[0].Alpha.Equal(numeric.New(1, 3)) {
			t.Errorf("%v: α1 = %v, want 1/3", e, d.Pairs[0].Alpha)
		}
		if !reflect.DeepEqual(d.Pairs[1].B, []int{3, 4, 5}) || !reflect.DeepEqual(d.Pairs[1].C, []int{3, 4, 5}) {
			t.Errorf("%v: pair 2 = %v", e, d.Pairs[1])
		}
		if !d.Pairs[1].Alpha.Equal(numeric.One) {
			t.Errorf("%v: α2 = %v, want 1", e, d.Pairs[1].Alpha)
		}
		if err := d.Validate(g); err != nil {
			t.Errorf("%v: Validate: %v", e, err)
		}
		// Classes: v1, v2 in B; v3 in C; triangle in both.
		for v, want := range []Class{ClassB, ClassB, ClassC, ClassBoth, ClassBoth, ClassBoth} {
			if d.ClassOf(v) != want {
				t.Errorf("%v: class of %d = %v, want %v", e, v, d.ClassOf(v), want)
			}
		}
	}
}

func TestSingleEdge(t *testing.T) {
	// u(1) - v(3): B = {v}, C = {u}, α = 1/3.
	g := graph.Path(numeric.Ints(1, 3))
	d := mustDecompose(t, g, EngineAuto)
	if len(d.Pairs) != 1 {
		t.Fatalf("pairs: %v", d)
	}
	if !reflect.DeepEqual(d.Pairs[0].B, []int{1}) || !reflect.DeepEqual(d.Pairs[0].C, []int{0}) {
		t.Fatalf("pair = %v", d.Pairs[0])
	}
	if !d.Pairs[0].Alpha.Equal(numeric.New(1, 3)) {
		t.Fatalf("α = %v", d.Pairs[0].Alpha)
	}
}

func TestSingleEdgeEqualWeights(t *testing.T) {
	g := graph.Path(numeric.Ints(2, 2))
	d := mustDecompose(t, g, EngineAuto)
	if len(d.Pairs) != 1 || !d.Pairs[0].Alpha.Equal(numeric.One) {
		t.Fatalf("decomposition = %v", d)
	}
	if !reflect.DeepEqual(d.Pairs[0].B, []int{0, 1}) || !d.Pairs[0].selfPaired() {
		t.Fatalf("expected B = C = {0,1}: %v", d.Pairs[0])
	}
	if d.ClassOf(0) != ClassBoth || !d.ClassOf(0).IsB() || !d.ClassOf(0).IsC() {
		t.Fatalf("class = %v", d.ClassOf(0))
	}
}

func TestUnitRingIsSelfPaired(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8} {
		g := graph.Ring(graph.RandomWeights(rand.New(rand.NewSource(1)), n, graph.DistUnit))
		d := mustDecompose(t, g, EngineAuto)
		if len(d.Pairs) != 1 {
			t.Fatalf("n=%d: %v", n, d)
		}
		if !d.Pairs[0].Alpha.Equal(numeric.One) || !d.Pairs[0].selfPaired() {
			t.Fatalf("n=%d: unit ring should be one self-pair with α = 1: %v", n, d)
		}
	}
}

func TestHeavyMiddlePath(t *testing.T) {
	// a(1) - b(100) - c(1): B = {b}, C = {a, c}, α = 2/100 = 1/50.
	g := graph.Path(numeric.Ints(1, 100, 1))
	d := mustDecompose(t, g, EngineAuto)
	if len(d.Pairs) != 1 {
		t.Fatalf("%v", d)
	}
	p := d.Pairs[0]
	if !reflect.DeepEqual(p.B, []int{1}) || !reflect.DeepEqual(p.C, []int{0, 2}) || !p.Alpha.Equal(numeric.New(1, 50)) {
		t.Fatalf("%v", p)
	}
	// Utilities per Proposition 6.
	if got := d.Utility(g, 1); !got.Equal(numeric.FromInt(2)) {
		t.Errorf("U_b = %v, want 2", got)
	}
	if got := d.Utility(g, 0); !got.Equal(numeric.FromInt(50)) {
		t.Errorf("U_a = %v, want 50", got)
	}
}

func TestMaximalityAbsorbsCoveredVertices(t *testing.T) {
	// Path a(1)-b(2)-c(100)-d(2)-e(1): the bottleneck {c} has α = 4/100 but
	// the MAXIMAL bottleneck is {a, c, e} with α = 4/102: a and e join
	// because their neighborhoods are already covered.
	g := graph.Path(numeric.Ints(1, 2, 100, 2, 1))
	for _, e := range []Engine{EngineFlow, EnginePathDP, EngineBrute} {
		d := mustDecompose(t, g, e)
		if len(d.Pairs) != 1 {
			t.Fatalf("%v: %v", e, d)
		}
		p := d.Pairs[0]
		if !reflect.DeepEqual(p.B, []int{0, 2, 4}) || !reflect.DeepEqual(p.C, []int{1, 3}) {
			t.Fatalf("%v: %v", e, p)
		}
		if !p.Alpha.Equal(numeric.New(4, 102)) {
			t.Fatalf("%v: α = %v", e, p.Alpha)
		}
	}
}

func TestStarDecomposition(t *testing.T) {
	// Star center(1), 3 leaves of weight 5 each: B = leaves, C = {center},
	// α = 1/15.
	g := graph.Star(numeric.Ints(1, 5, 5, 5))
	d := mustDecompose(t, g, EngineFlow)
	if len(d.Pairs) != 1 {
		t.Fatalf("%v", d)
	}
	p := d.Pairs[0]
	if !reflect.DeepEqual(p.B, []int{1, 2, 3}) || !reflect.DeepEqual(p.C, []int{0}) || !p.Alpha.Equal(numeric.New(1, 15)) {
		t.Fatalf("%v", p)
	}
	// EnginePathDP must refuse the star.
	if _, err := DecomposeWith(g, EnginePathDP); err == nil {
		t.Error("EnginePathDP accepted a star")
	}
}

func TestTwoStageRing(t *testing.T) {
	// Ring 0(1)-1(100)-2(1)-3(5)-4(5)-0: B1 should capture the heavy vertex.
	g := graph.Ring(numeric.Ints(1, 100, 1, 5, 5))
	for _, e := range []Engine{EngineFlow, EnginePathDP, EngineBrute} {
		d := mustDecompose(t, g, e)
		if err := d.Validate(g); err != nil {
			t.Fatalf("%v: %v\n%v", e, err, d)
		}
		if len(d.Pairs) != 2 {
			t.Fatalf("%v: want 2 pairs: %v", e, d)
		}
		if !reflect.DeepEqual(d.Pairs[0].B, []int{1}) || !reflect.DeepEqual(d.Pairs[0].C, []int{0, 2}) {
			t.Fatalf("%v: pair1 = %v", e, d.Pairs[0])
		}
		if !d.Pairs[0].Alpha.Equal(numeric.New(2, 100)) {
			t.Fatalf("%v: α1 = %v", e, d.Pairs[0].Alpha)
		}
		if !reflect.DeepEqual(d.Pairs[1].B, []int{3, 4}) || !d.Pairs[1].Alpha.Equal(numeric.One) {
			t.Fatalf("%v: pair2 = %v", e, d.Pairs[1])
		}
	}
}

func TestZeroWeightVertexJoinsPair(t *testing.T) {
	// Path v1(0) - a(1) - b(3): bottleneck {b} with α = 1/3, C = {a};
	// the zero-weight leaf v1 is absorbed into B by maximality because
	// Γ(v1) = {a} ⊆ C.
	g := graph.Path([]numeric.Rat{numeric.Zero, numeric.One, numeric.FromInt(3)})
	for _, e := range []Engine{EngineFlow, EnginePathDP, EngineBrute} {
		d := mustDecompose(t, g, e)
		if len(d.Pairs) != 1 {
			t.Fatalf("%v: %v", e, d)
		}
		p := d.Pairs[0]
		if !reflect.DeepEqual(p.B, []int{0, 2}) || !reflect.DeepEqual(p.C, []int{1}) {
			t.Fatalf("%v: %v", e, p)
		}
		if !p.Alpha.Equal(numeric.New(1, 3)) {
			t.Fatalf("%v: α = %v", e, p.Alpha)
		}
		if got := d.Utility(g, 0); !got.IsZero() {
			t.Fatalf("%v: zero-weight vertex has utility %v", e, got)
		}
	}
}

func TestAllZeroWeightsConvention(t *testing.T) {
	g := graph.Path([]numeric.Rat{numeric.Zero, numeric.Zero, numeric.Zero})
	d, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pairs) != 1 || !d.Pairs[0].Alpha.Equal(numeric.One) || !reflect.DeepEqual(d.Pairs[0].B, []int{0, 1, 2}) {
		t.Fatalf("%v", d)
	}
	for v := 0; v < 3; v++ {
		if !d.Utility(g, v).IsZero() {
			t.Fatalf("utility of penniless agent %d = %v", v, d.Utility(g, v))
		}
	}
}

func TestEmptyGraphFails(t *testing.T) {
	if _, err := Decompose(graph.New(0)); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBruteEngineSizeLimit(t *testing.T) {
	g := graph.Ring(graph.RandomWeights(rand.New(rand.NewSource(2)), bruteMaxN+1, graph.DistUniform))
	if _, err := DecomposeWith(g, EngineBrute); err == nil {
		t.Fatal("brute engine accepted an oversized graph")
	}
}

func TestMaxBottleneckDirect(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 2, 100, 2, 1))
	for _, e := range []Engine{EngineFlow, EnginePathDP, EngineBrute} {
		B, alpha, err := MaxBottleneck(g, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if !reflect.DeepEqual(B, []int{0, 2, 4}) || !alpha.Equal(numeric.New(4, 102)) {
			t.Fatalf("%v: B=%v α=%v", e, B, alpha)
		}
	}
	if _, _, err := MaxBottleneck(graph.Star(numeric.Ints(1, 1, 1, 1)), EnginePathDP); err == nil {
		t.Error("path-DP accepted a star")
	}
	zero := graph.Path([]numeric.Rat{numeric.Zero, numeric.Zero})
	if _, _, err := MaxBottleneck(zero, EngineAuto); err == nil {
		t.Error("zero-weight graph accepted")
	}
}

func TestQuickMaxBottleneckDominatesRandomSubsets(t *testing.T) {
	// Property: α(B₁) ≤ α(S) for every sampled S, and any S attaining the
	// minimum is contained in B₁.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(8) + 3
		g := graph.RandomRing(rng, n, graph.WeightDist(rng.Intn(3)))
		B, alpha, err := MaxBottleneck(g, EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		inB := make(map[int]bool, len(B))
		for _, v := range B {
			inB[v] = true
		}
		for probe := 0; probe < 40; probe++ {
			var S []int
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					S = append(S, v)
				}
			}
			if len(S) == 0 || g.WeightOf(S).IsZero() {
				continue
			}
			a := Alpha(g, S)
			if a.Less(alpha) {
				t.Fatalf("trial %d: α(%v)=%v < α_min=%v", trial, S, a, alpha)
			}
			if a.Equal(alpha) {
				for _, v := range S {
					if !inB[v] {
						t.Fatalf("trial %d: minimizer %v escapes maximal bottleneck %v", trial, S, B)
					}
				}
			}
		}
	}
}

// decompositionsEqual compares pairs including α values.
func decompositionsEqual(a, b *Decomposition) bool {
	if len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if !reflect.DeepEqual(a.Pairs[i].B, b.Pairs[i].B) ||
			!reflect.DeepEqual(a.Pairs[i].C, b.Pairs[i].C) ||
			!a.Pairs[i].Alpha.Equal(b.Pairs[i].Alpha) {
			return false
		}
	}
	return true
}

func TestEnginesAgreeOnRandomRings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		n := rng.Intn(10) + 3
		dist := graph.WeightDist(rng.Intn(4))
		g := graph.RandomRing(rng, n, dist)
		dFlow := mustDecompose(t, g, EngineFlow)
		dDP := mustDecompose(t, g, EnginePathDP)
		dBrute := mustDecompose(t, g, EngineBrute)
		if !decompositionsEqual(dFlow, dBrute) {
			t.Fatalf("trial %d (n=%d, %v): flow %v != brute %v\ngraph %v",
				trial, n, dist, dFlow, dBrute, g.Weights())
		}
		if !decompositionsEqual(dDP, dBrute) {
			t.Fatalf("trial %d (n=%d, %v): dp %v != brute %v\ngraph %v",
				trial, n, dist, dDP, dBrute, g.Weights())
		}
		if err := dBrute.Validate(g); err != nil {
			t.Fatalf("trial %d: Validate: %v\n%v", trial, err, dBrute)
		}
	}
}

func TestEnginesAgreeOnRandomPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 150; trial++ {
		n := rng.Intn(12) + 1
		dist := graph.WeightDist(rng.Intn(4))
		g := graph.Path(graph.RandomWeights(rng, n, dist))
		dFlow := mustDecompose(t, g, EngineFlow)
		dDP := mustDecompose(t, g, EnginePathDP)
		dBrute := mustDecompose(t, g, EngineBrute)
		if !decompositionsEqual(dFlow, dBrute) || !decompositionsEqual(dDP, dBrute) {
			t.Fatalf("trial %d (n=%d): engines disagree\nflow: %v\ndp: %v\nbrute: %v\nweights %v",
				trial, n, dFlow, dDP, dBrute, g.Weights())
		}
	}
}

func TestFlowAgreesWithBruteOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(9) + 2
		g := graph.RandomConnected(rng, n, rng.Float64()*0.7, graph.WeightDist(rng.Intn(4)))
		dFlow := mustDecompose(t, g, EngineFlow)
		dBrute := mustDecompose(t, g, EngineBrute)
		if !decompositionsEqual(dFlow, dBrute) {
			t.Fatalf("trial %d: flow %v != brute %v\n%v weights %v",
				trial, dFlow, dBrute, g.Edges(), g.Weights())
		}
		if err := dFlow.Validate(g); err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, dFlow)
		}
	}
}

func TestUtilitiesSumToTotalWeightOnConnectedGraphs(t *testing.T) {
	// Every agent gives away its whole endowment in the BD allocation, so
	// utilities must redistribute exactly the total weight.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(9) + 2
		g := graph.RandomConnected(rng, n, 0.4, graph.DistUniform)
		d := mustDecompose(t, g, EngineFlow)
		if got := numeric.Sum(d.Utilities(g)); !got.Equal(g.TotalWeight()) {
			t.Fatalf("trial %d: ΣU = %v, Σw = %v\n%v", trial, got, g.TotalWeight(), d)
		}
	}
}

func TestMaximalBottleneckContainsEveryBottleneck(t *testing.T) {
	// B_1 must be the union of all α-minimizing sets.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(7) + 2
		g := graph.RandomConnected(rng, n, 0.5, graph.WeightDist(rng.Intn(3)))
		d := mustDecompose(t, g, EngineFlow)
		alphaMin := d.Pairs[0].Alpha
		inB1 := make(map[int]bool)
		for _, v := range d.Pairs[0].B {
			inB1[v] = true
		}
		for mask := 1; mask < 1<<uint(n); mask++ {
			var S []int
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					S = append(S, v)
				}
			}
			if g.WeightOf(S).IsZero() {
				continue
			}
			a := Alpha(g, S)
			if a.Less(alphaMin) {
				t.Fatalf("trial %d: α(%v) = %v < α_min = %v", trial, S, a, alphaMin)
			}
			if a.Equal(alphaMin) {
				for _, v := range S {
					if !inB1[v] {
						t.Fatalf("trial %d: bottleneck %v not contained in maximal B1 %v", trial, S, d.Pairs[0].B)
					}
				}
			}
		}
	}
}

func TestStructureSignature(t *testing.T) {
	g := graph.Path(numeric.Ints(1, 100, 1))
	d := mustDecompose(t, g, EngineAuto)
	want := "B{1}C{0,2};"
	if got := d.StructureSignature(); got != want {
		t.Errorf("signature = %q, want %q", got, want)
	}
	// Changing a weight inside the same structure keeps the signature.
	g2 := graph.Path(numeric.Ints(1, 90, 1))
	d2 := mustDecompose(t, g2, EngineAuto)
	if d.StructureSignature() != d2.StructureSignature() {
		t.Error("signature should not depend on α")
	}
	if d.String() == d2.String() {
		t.Error("String should include α and differ")
	}
}

func TestAlphaPanicsOnZeroWeightSet(t *testing.T) {
	g := graph.Path([]numeric.Rat{numeric.Zero, numeric.One})
	defer func() {
		if recover() == nil {
			t.Fatal("Alpha of zero-weight set did not panic")
		}
	}()
	Alpha(g, []int{0})
}

func TestDisconnectedGraphDecomposes(t *testing.T) {
	// Two components: heavy-middle path and a unit edge.
	g := graph.New(5)
	g.MustSetWeight(0, numeric.One)
	g.MustSetWeight(1, numeric.FromInt(100))
	g.MustSetWeight(2, numeric.One)
	g.MustSetWeight(3, numeric.One)
	g.MustSetWeight(4, numeric.One)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	for _, e := range []Engine{EngineFlow, EnginePathDP, EngineBrute} {
		d := mustDecompose(t, g, e)
		if err := d.Validate(g); err != nil {
			t.Fatalf("%v: %v\n%v", e, err, d)
		}
		if len(d.Pairs) != 2 {
			t.Fatalf("%v: %v", e, d)
		}
		if !reflect.DeepEqual(d.Pairs[0].B, []int{1}) {
			t.Fatalf("%v: pair1 %v", e, d.Pairs[0])
		}
		if !reflect.DeepEqual(d.Pairs[1].B, []int{3, 4}) || !d.Pairs[1].Alpha.Equal(numeric.One) {
			t.Fatalf("%v: pair2 %v", e, d.Pairs[1])
		}
	}
}

func TestIsolatedVertexGetsAlphaZeroPairRejectedByValidate(t *testing.T) {
	// An isolated positive-weight vertex yields an α = 0 pair, which is
	// outside Proposition 3's guarantees (they assume meaningful exchange);
	// Decompose must fail cleanly rather than emit garbage.
	g := graph.New(3)
	g.MustSetWeight(0, numeric.One)
	g.MustSetWeight(1, numeric.One)
	g.MustSetWeight(2, numeric.FromInt(5))
	g.MustAddEdge(0, 1)
	_, err := Decompose(g)
	if err == nil {
		// If it succeeds, the α = 0 pair must at least be flagged by Validate.
		d := mustDecompose(t, g, EngineAuto)
		if vErr := d.Validate(g); vErr == nil {
			t.Fatal("isolated positive-weight vertex passed Validate")
		}
	}
}

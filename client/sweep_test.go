package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// scriptedSweep serves a fixed sequence of sweep responses, checking that
// each request carries the resume token minted by the previous response.
type scriptedSweep struct {
	t         *testing.T
	responses []SweepResponse
	wantToken []string // expected Resume field per request ("" for the first)
	calls     int
}

func (s *scriptedSweep) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.t.Errorf("decode: %v", err)
	}
	if s.calls >= len(s.responses) {
		s.t.Errorf("unexpected request %d", s.calls)
		http.Error(w, "too many requests", http.StatusInternalServerError)
		return
	}
	if req.Resume != s.wantToken[s.calls] {
		s.t.Errorf("request %d: resume %q, want %q", s.calls, req.Resume, s.wantToken[s.calls])
	}
	resp := s.responses[s.calls]
	s.calls++
	writeJSON(w, http.StatusOK, resp)
}

func TestSweepAllMergesSegments(t *testing.T) {
	pts := []WireSweepPoint{
		{W1: "0", U: "1"},
		{W1: "1/2", U: "3"},
		{W1: "1", U: "2"},
		{W1: "3/2", U: "5/2"},
		{W1: "2", U: "1/2"},
	}
	script := &scriptedSweep{
		t: t,
		responses: []SweepResponse{
			{Points: pts[0:2], BestW1: "1/2", BestU: "3", Honest: "2", Ratio: "3/2",
				Partial: true, StartIndex: 0, NextIndex: 2, ResumeToken: "t1"},
			{Points: pts[2:4], BestW1: "3/2", BestU: "5/2", Honest: "2", Ratio: "5/4",
				Partial: true, StartIndex: 2, NextIndex: 4, ResumeToken: "t2"},
			{Points: pts[4:5], BestW1: "2", BestU: "1/2", Honest: "2", Ratio: "1/4",
				StartIndex: 4, NextIndex: 5},
		},
		wantToken: []string{"", "t1", "t2"},
	}
	ts := httptest.NewServer(script)
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	got, err := c.SweepAll(context.Background(), &SweepRequest{Graph: Graph{Ring: []string{"1", "1", "1"}}, Grid: 4})
	if err != nil {
		t.Fatal(err)
	}
	if script.calls != 3 {
		t.Fatalf("made %d requests, want 3", script.calls)
	}
	if len(got.Points) != 5 || got.Partial {
		t.Fatalf("merged: %+v", got)
	}
	for i, p := range got.Points {
		if p != pts[i] {
			t.Fatalf("point %d: %+v != %+v", i, p, pts[i])
		}
	}
	// Best over ALL segments is u=3 at w1=1/2 (from the first segment, not
	// the last), and the ratio is recomputed exactly: 3 / 2.
	if got.BestW1 != "1/2" || got.BestU != "3" || got.Ratio != "3/2" || got.Honest != "2" {
		t.Fatalf("merged best/ratio wrong: %+v", got)
	}
	if got.ResumeToken != "" || got.NextIndex != 0 {
		t.Fatalf("merged response leaks partial fields: %+v", got)
	}
}

func TestSweepAllCompleteFirstTry(t *testing.T) {
	script := &scriptedSweep{
		t: t,
		responses: []SweepResponse{
			{Points: []WireSweepPoint{{W1: "0", U: "1"}, {W1: "1", U: "2"}},
				BestW1: "1", BestU: "2", Honest: "1", Ratio: "2"},
		},
		wantToken: []string{""},
	}
	ts := httptest.NewServer(script)
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	got, err := c.SweepAll(context.Background(), &SweepRequest{Grid: 1})
	if err != nil {
		t.Fatal(err)
	}
	if script.calls != 1 || got.Ratio != "2" {
		t.Fatalf("calls=%d got=%+v", script.calls, got)
	}
}

func TestSweepAllStallsOut(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, SweepResponse{
			Points: []WireSweepPoint{}, Partial: true, StartIndex: 0, NextIndex: 0, ResumeToken: "t"})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1), WithMaxAttempts(3))
	_, err := c.SweepAll(context.Background(), &SweepRequest{Grid: 4})
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("want stall error, got %v", err)
	}
}

func TestSweepAllMissingToken(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, SweepResponse{
			Points: []WireSweepPoint{{W1: "0", U: "1"}}, Partial: true, NextIndex: 1})
	}))
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	_, err := c.SweepAll(context.Background(), &SweepRequest{Grid: 4})
	if err == nil || !strings.Contains(err.Error(), "resume token") {
		t.Fatalf("want missing-token error, got %v", err)
	}
}

func TestSweepAllDoesNotMutateRequest(t *testing.T) {
	script := &scriptedSweep{
		t: t,
		responses: []SweepResponse{
			{Points: []WireSweepPoint{{W1: "0", U: "1"}}, Partial: true, NextIndex: 1, ResumeToken: "t1",
				BestW1: "0", BestU: "1", Honest: "1", Ratio: "1"},
			{Points: []WireSweepPoint{{W1: "1", U: "2"}}, StartIndex: 1, NextIndex: 2,
				BestW1: "1", BestU: "2", Honest: "1", Ratio: "2"},
		},
		wantToken: []string{"", "t1"},
	}
	ts := httptest.NewServer(script)
	defer ts.Close()
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	req := &SweepRequest{Grid: 1}
	if _, err := c.SweepAll(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if req.Resume != "" {
		t.Fatalf("SweepAll mutated the request: Resume=%q", req.Resume)
	}
}

// TestSweepAllStallBackoffUsesContext pins that the stall path is context-
// aware: a canceled context aborts the stall sleep promptly.
func TestSweepAllStallBackoffUsesContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, SweepResponse{Partial: true, ResumeToken: "t"})
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, WithBackoff(time.Hour, time.Hour), WithSeed(1),
		WithRetryHook(func(int, error, time.Duration) { cancel() }))
	start := time.Now()
	_, err := c.SweepAll(ctx, &SweepRequest{Grid: 4})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("stall sleep ignored context cancellation")
	}
}

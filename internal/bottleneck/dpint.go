package bottleneck

import (
	"math"

	"repro/internal/numeric"
)

// Integer fast path for the DP value passes.
//
// For λ = p/q and component weights w_i = n_i/D (common denominator D), the
// subproblem costs are integer multiples of 1/(q·D): selecting vertex i
// costs −p·n_i and charging it costs q·n_i. When the worst-case accumulated
// magnitude (p+q)·Σn_i fits comfortably in int64, the whole forward pass
// runs on machine integers — no gcd normalization, no allocation — and only
// the final value is converted back to an exact rational. Typical
// decompositions (integer weights, λ a ratio of weight sums) stay on this
// path; breakpoint bisection with 2^-40-scale denominators falls back to
// the exact rational DP.

// intWeights returns the component weights scaled to a common denominator,
// or ok=false when they don't fit int64.
func (c dpComponent) intWeights() (scaled []int64, denom int64, ok bool) {
	d := int64(1)
	for _, w := range c.ws {
		_, wd, fits := w.Int64Parts()
		if !fits {
			return nil, 0, false
		}
		g := gcdInt64(d, wd)
		// d = lcm(d, wd), checked.
		hi, lo := math.MaxInt64/(d/g), wd
		if lo > hi {
			return nil, 0, false
		}
		d = d / g * wd
	}
	scaled = make([]int64, len(c.ws))
	for i, w := range c.ws {
		wn, wd, _ := w.Int64Parts()
		f := d / wd
		if wn != 0 && f > math.MaxInt64/wn {
			return nil, 0, false
		}
		scaled[i] = wn * f
	}
	return scaled, d, true
}

func gcdInt64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// intPlan is the prepared integer instance for one λ.
type intPlan struct {
	sel    []int64 // −p·n_i (cost of selecting i)
	charge []int64 // q·n_i (Γ-charge of i)
	wInt   []int64 // n_i (minimizer weight units)
	scale  numeric.Rat
	wDen   int64
}

// intPlanFor prepares the integer representation, or ok=false when any
// magnitude risks overflow (a conservative 2^61 budget).
func (c dpComponent) intPlanFor(lambda numeric.Rat) (intPlan, bool) {
	p, q, fits := lambda.Int64Parts()
	if !fits {
		return intPlan{}, false
	}
	scaled, d, ok := c.intWeights()
	if !ok {
		return intPlan{}, false
	}
	var sum float64
	for _, n := range scaled {
		sum += float64(n)
	}
	if (float64(p)+float64(q))*(sum+1) > 1e18 {
		return intPlan{}, false
	}
	plan := intPlan{
		sel:    make([]int64, len(scaled)),
		charge: make([]int64, len(scaled)),
		wInt:   scaled,
		wDen:   d,
	}
	for i, n := range scaled {
		plan.sel[i] = -p * n
		plan.charge[i] = q * n
	}
	// Costs are in units of 1/(q·D); rebuild exactly from (q, d) rationals
	// to avoid an int64 overflow in q·d itself.
	plan.scale = numeric.New(1, q).Mul(numeric.New(1, d))
	return plan, true
}

// intCell mirrors costW on machine integers.
type intCell struct {
	cost, wS int64
	ok       bool
}

func (a intCell) better(b intCell) bool {
	if !b.ok {
		return a.ok
	}
	if !a.ok {
		return false
	}
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.wS > b.wS
}

func (c dpComponent) pathValueInt(pl intPlan) costW {
	m := len(c.order)
	var dp [2][2]intCell
	dp[0][0] = intCell{ok: true}
	dp[0][1] = intCell{cost: pl.sel[0], wS: pl.wInt[0], ok: true}
	for i := 0; i+1 < m; i++ {
		var ndp [2][2]intCell
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !dp[a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					cand := dp[a][b]
					if a == 1 || cb == 1 {
						cand.cost += pl.charge[i]
					}
					if cb == 1 {
						cand.cost += pl.sel[i+1]
						cand.wS += pl.wInt[i+1]
					}
					if cand.better(ndp[b][cb]) {
						ndp[b][cb] = cand
					}
				}
			}
		}
		dp = ndp
	}
	best := intCell{}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if !dp[a][b].ok {
				continue
			}
			cand := dp[a][b]
			if a == 1 {
				cand.cost += pl.charge[m-1]
			}
			if cand.better(best) {
				best = cand
			}
		}
	}
	return pl.toCostW(best)
}

func (c dpComponent) cycleValueInt(pl intPlan) costW {
	m := len(c.order)
	best := intCell{}
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			var dp [2][2]intCell
			init := intCell{ok: true}
			if s0 == 1 {
				init.cost += pl.sel[0]
				init.wS += pl.wInt[0]
			}
			if s1 == 1 {
				init.cost += pl.sel[1]
				init.wS += pl.wInt[1]
			}
			dp[s0][s1] = init
			for i := 1; i+1 < m; i++ {
				var ndp [2][2]intCell
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !dp[a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							cand := dp[a][b]
							if a == 1 || cb == 1 {
								cand.cost += pl.charge[i]
							}
							if cb == 1 {
								cand.cost += pl.sel[i+1]
								cand.wS += pl.wInt[i+1]
							}
							if cand.better(ndp[b][cb]) {
								ndp[b][cb] = cand
							}
						}
					}
				}
				dp = ndp
			}
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !dp[a][b].ok {
						continue
					}
					cand := dp[a][b]
					if a == 1 || s0 == 1 {
						cand.cost += pl.charge[m-1]
					}
					if s1 == 1 || b == 1 {
						cand.cost += pl.charge[0]
					}
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
	}
	return pl.toCostW(best)
}

// toCostW converts an integer cell back to exact rationals.
func (pl intPlan) toCostW(c intCell) costW {
	if !c.ok {
		panic("bottleneck: infeasible integer DP")
	}
	return costW{
		cost: numeric.FromInt(c.cost).Mul(pl.scale),
		wS:   numeric.New(c.wS, pl.wDen),
		ok:   true,
	}
}

// pathMembershipInt mirrors pathMembership on machine integers: one forward
// and one backward sweep plus per-position gluing.
func (c dpComponent) pathMembershipInt(pl intPlan) (numeric.Rat, []bool) {
	m := len(c.order)
	fwd := make([][2][2]intCell, m)
	fwd[0][0][0] = intCell{ok: true}
	fwd[0][0][1] = intCell{cost: pl.sel[0], ok: true}
	for i := 0; i+1 < m; i++ {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !fwd[i][a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					cand := fwd[i][a][b]
					if a == 1 || cb == 1 {
						cand.cost += pl.charge[i]
					}
					if cb == 1 {
						cand.cost += pl.sel[i+1]
					}
					if cand.better(fwd[i+1][b][cb]) {
						fwd[i+1][b][cb] = cand
					}
				}
			}
		}
	}
	bwd := make([][2][2]intCell, m)
	for b := 0; b < 2; b++ {
		bwd[m-1][b][0] = intCell{ok: true}
	}
	for i := m - 2; i >= 0; i-- {
		for b := 0; b < 2; b++ {
			for cb := 0; cb < 2; cb++ {
				best := intCell{}
				for d := 0; d < 2; d++ {
					if !bwd[i+1][cb][d].ok {
						continue
					}
					cand := bwd[i+1][cb][d]
					if b == 1 || d == 1 {
						cand.cost += pl.charge[i+1]
					}
					if cand.better(best) {
						best = cand
					}
				}
				if best.ok {
					if cb == 1 {
						best.cost += pl.sel[i+1]
					}
					bwd[i][b][cb] = best
				}
			}
		}
	}
	atPos := func(i, bFixed int) intCell {
		best := intCell{}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if bFixed >= 0 && b != bFixed {
					continue
				}
				if !fwd[i][a][b].ok {
					continue
				}
				for cb := 0; cb < 2; cb++ {
					if !bwd[i][b][cb].ok {
						continue
					}
					cand := intCell{cost: fwd[i][a][b].cost + bwd[i][b][cb].cost, ok: true}
					if a == 1 || cb == 1 {
						cand.cost += pl.charge[i]
					}
					if cand.better(best) {
						best = cand
					}
				}
			}
		}
		return best
	}
	globalMin := atPos(0, -1)
	members := make([]bool, m)
	for i := 0; i < m; i++ {
		with := atPos(i, 1)
		members[i] = with.ok && with.cost == globalMin.cost
	}
	return numeric.FromInt(globalMin.cost).Mul(pl.scale), members
}

// cycleMembershipInt mirrors cycleMembership on machine integers.
func (c dpComponent) cycleMembershipInt(pl intPlan) (numeric.Rat, []bool) {
	m := len(c.order)
	globalMin := intCell{}
	memberMin := make([]intCell, m)

	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			fwd := make([][2][2]intCell, m)
			init := intCell{ok: true}
			if s0 == 1 {
				init.cost += pl.sel[0]
			}
			if s1 == 1 {
				init.cost += pl.sel[1]
			}
			fwd[1][s0][s1] = init
			for i := 1; i+1 < m; i++ {
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !fwd[i][a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							cand := fwd[i][a][b]
							if a == 1 || cb == 1 {
								cand.cost += pl.charge[i]
							}
							if cb == 1 {
								cand.cost += pl.sel[i+1]
							}
							if cand.better(fwd[i+1][b][cb]) {
								fwd[i+1][b][cb] = cand
							}
						}
					}
				}
			}
			bwd := make([][2][2]intCell, m)
			for b := 0; b < 2; b++ {
				for cb := 0; cb < 2; cb++ {
					cell := intCell{ok: true}
					if cb == 1 {
						cell.cost += pl.sel[m-1]
					}
					if b == 1 || s0 == 1 {
						cell.cost += pl.charge[m-1]
					}
					if s1 == 1 || cb == 1 {
						cell.cost += pl.charge[0]
					}
					bwd[m-2][b][cb] = cell
				}
			}
			for i := m - 3; i >= 1; i-- {
				for b := 0; b < 2; b++ {
					for cb := 0; cb < 2; cb++ {
						best := intCell{}
						for d := 0; d < 2; d++ {
							if !bwd[i+1][cb][d].ok {
								continue
							}
							cand := bwd[i+1][cb][d]
							if b == 1 || d == 1 {
								cand.cost += pl.charge[i+1]
							}
							if cand.better(best) {
								best = cand
							}
						}
						if best.ok {
							if cb == 1 {
								best.cost += pl.sel[i+1]
							}
							bwd[i][b][cb] = best
						}
					}
				}
			}
			glue := func(i, bFixed, cFixed int) intCell {
				best := intCell{}
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if bFixed >= 0 && b != bFixed {
							continue
						}
						if !fwd[i][a][b].ok {
							continue
						}
						for cb := 0; cb < 2; cb++ {
							if cFixed >= 0 && cb != cFixed {
								continue
							}
							if !bwd[i][b][cb].ok {
								continue
							}
							cand := intCell{cost: fwd[i][a][b].cost + bwd[i][b][cb].cost, ok: true}
							if a == 1 || cb == 1 {
								cand.cost += pl.charge[i]
							}
							if cand.better(best) {
								best = cand
							}
						}
					}
				}
				return best
			}
			free := glue(1, -1, -1)
			if free.better(globalMin) {
				globalMin = free
			}
			update := func(i int, v intCell) {
				if v.better(memberMin[i]) {
					memberMin[i] = v
				}
			}
			if s0 == 1 {
				update(0, free)
			}
			if s1 == 1 {
				update(1, free)
			}
			for i := 2; i <= m-2; i++ {
				update(i, glue(i, 1, -1))
			}
			update(m-1, glue(m-2, -1, 1))
		}
	}
	members := make([]bool, m)
	for i := range members {
		members[i] = memberMin[i].ok && memberMin[i].cost == globalMin.cost
	}
	return numeric.FromInt(globalMin.cost).Mul(pl.scale), members
}

#!/bin/sh
# Repository gate: build, vet, and the full test suite under the race
# detector (the incremental split engine and the parallel decomposition are
# exercised concurrently by their tests). Run from the repo root:
#
#	./ci.sh
set -eux

go build ./...
go vet ./...
go test -race ./...

# Fuzz smoke: run each native fuzz target briefly against its seed corpus
# plus fresh mutations. Parser/codec regressions (panics, unbounded
# allocation) surface here long before a full fuzzing campaign.
go test ./internal/graph -run '^$' -fuzz '^FuzzParseGraph$' -fuzztime 10s
go test ./internal/server -run '^$' -fuzz '^FuzzRatDecode$' -fuzztime 10s

// Command experiments regenerates every table and series of the
// reproduction (DESIGN.md §4, recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-scale quick|full] [-out FILE] [-only E5,E16] [-csvdir DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		scale  = flag.String("scale", "full", "workload scale: quick|full")
		out    = flag.String("out", "", "output file (default stdout)")
		only   = flag.String("only", "", "comma-separated experiment ids to run (e.g. \"E5,E16\"); default all")
		csvDir = flag.String("csvdir", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.Quick
	case "full":
		s = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	start := time.Now()
	if err := experiments.RunFiltered(w, s, ids); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: FAILED:", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		files, err := experiments.WriteCSV(*csvDir, s, ids)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: CSV:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "wrote %d CSV files to %s\n", len(files), *csvDir)
	}
	fmt.Fprintf(w, "elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

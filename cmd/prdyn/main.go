// Command prdyn runs the proportional response dynamics (or the
// message-passing swarm) on a graph and reports convergence to the exact BD
// allocation.
//
// Usage:
//
//	prdyn [-in FILE | -ring w,... | -path w,...] [-rounds N] [-damping θ]
//	      [-swarm] [-track v1,v2,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bottleneck"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/p2p"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prdyn:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("prdyn", flag.ContinueOnError)
	var (
		inFile  = fs.String("in", "", "graph file (\"-\" = stdin)")
		ringW   = fs.String("ring", "", "comma-separated ring weights")
		pathW   = fs.String("path", "", "comma-separated path weights")
		rounds  = fs.Int("rounds", 10000, "maximum rounds")
		damping = fs.Float64("damping", 0, "damping θ ∈ [0,1)")
		swarm   = fs.Bool("swarm", false, "run the message-passing swarm instead of the recurrence")
		track   = fs.String("track", "", "comma-separated agents to track (swarm mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*inFile, *ringW, *pathW)
	if err != nil {
		return err
	}
	dec, err := bottleneck.Decompose(g)
	if err != nil {
		return err
	}
	exact := dec.Utilities(g)

	if *swarm {
		var tracked []int
		if *track != "" {
			for _, s := range strings.Split(*track, ",") {
				v, err := strconv.Atoi(s)
				if err != nil {
					return err
				}
				tracked = append(tracked, v)
			}
		}
		res, err := p2p.Run(g, p2p.Config{Rounds: *rounds, TrackAgents: tracked})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "swarm: %d rounds, %d messages\n", res.Rounds, res.Messages)
		printUtilities(w, g, res.Utilities, exact)
		for i, v := range tracked {
			h := res.History[i]
			fmt.Fprintf(w, "agent %d history: first=%.6f mid=%.6f last=%.6f\n",
				v, h[0], h[len(h)/2], h[len(h)-1])
		}
		return nil
	}

	res, err := dynamics.Run(g, dynamics.Options{
		MaxRounds:       *rounds,
		Damping:         *damping,
		TargetUtilities: exact,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamics: %d rounds, converged=%v, final L∞ utility error %.3e\n",
		res.Rounds, res.Converged, res.FinalUtilityError())
	printUtilities(w, g, res.Utilities, exact)
	return nil
}

func printUtilities(w io.Writer, g *graph.Graph, got []float64, exact []numeric.Rat) {
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(w, "  U(%s) = %.6f (exact %s)\n", g.Label(v), got[v], exact[v])
	}
}

func loadGraph(inFile, ringW, pathW string) (*graph.Graph, error) {
	selected := 0
	for _, on := range []bool{inFile != "", ringW != "", pathW != ""} {
		if on {
			selected++
		}
	}
	if selected != 1 {
		return nil, fmt.Errorf("select exactly one of -in, -ring, -path")
	}
	parse := func(s string) ([]numeric.Rat, error) {
		parts := strings.Split(s, ",")
		ws := make([]numeric.Rat, len(parts))
		for i, p := range parts {
			w, err := numeric.Parse(p)
			if err != nil {
				return nil, err
			}
			ws[i] = w
		}
		return ws, nil
	}
	switch {
	case ringW != "":
		ws, err := parse(ringW)
		if err != nil {
			return nil, err
		}
		return graph.Ring(ws), nil
	case pathW != "":
		ws, err := parse(pathW)
		if err != nil {
			return nil, err
		}
		return graph.Path(ws), nil
	default:
		r := os.Stdin
		if inFile != "-" {
			f, err := os.Open(inFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		return graph.Read(r)
	}
}

package jobs

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures checkpoint-delta append throughput: the
// un-synced hot path a running sweep job exercises once per grid point.
func BenchmarkWALAppend(b *testing.B) {
	ctx := context.Background()
	st, err := Open(b.TempDir(), StoreConfig{CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rec, _, err := st.Submit(ctx, Submission{Key: "bench", Kind: "sweep"})
	if err != nil {
		b.Fatal(err)
	}
	pts := []Point{{W1: "12345/67890", U: "98765/43210"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AppendPoints(ctx, rec.ID, i, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendSync measures the fsync'd append path — the cost of one
// durable state transition.
func BenchmarkWALAppendSync(b *testing.B) {
	ctx := context.Background()
	st, err := Open(b.TempDir(), StoreConfig{CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rec, _, err := st.Submit(ctx, Submission{Key: "bench", Kind: "sweep"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Update(ctx, rec.ID, func(r *Record) error {
			r.Priority = i
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover10k measures a cold Open over a WAL holding 10k records —
// the startup recovery cost after an unclean shutdown at scale.
func BenchmarkRecover10k(b *testing.B) {
	ctx := context.Background()
	dir := b.TempDir()
	st, err := Open(dir, StoreConfig{CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, _, err := st.Submit(ctx, Submission{
			Key:  fmt.Sprintf("job-%d", i),
			Kind: "sweep",
			Spec: []byte(`{"grid":64}`),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, StoreConfig{CompactBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if got := re.Stats().Recovered; got != 10_000 {
			b.Fatalf("recovered %d, want 10000", got)
		}
		re.Close()
	}
}

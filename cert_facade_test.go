package repro_test

import (
	"context"
	"testing"

	"repro"
)

func certRing() *repro.Graph {
	ws := []repro.Rat{
		repro.NewRat(3, 1), repro.NewRat(1, 1), repro.NewRat(2, 1),
		repro.NewRat(1, 1), repro.NewRat(5, 1),
	}
	return repro.Ring(ws)
}

// TestWithCertificate exercises the certified facade paths: each call
// populates its Certificate field with a checked, independently
// re-checkable certificate, and the certified answer is bit-identical to
// the plain one.
func TestWithCertificate(t *testing.T) {
	ctx := context.Background()
	g := certRing()

	var c repro.Certificate
	d, err := repro.Decompose(ctx, g, repro.WithCertificate(&c))
	if err != nil {
		t.Fatal(err)
	}
	if c.Decomposition == nil {
		t.Fatal("no decomposition certificate")
	}
	if err := repro.CheckCertificate(c.Decomposition); err != nil {
		t.Fatalf("re-check: %v", err)
	}
	if len(c.Decomposition.Pairs) != len(d.Pairs) {
		t.Fatalf("certificate has %d pairs, decomposition %d", len(c.Decomposition.Pairs), len(d.Pairs))
	}

	plain, err := repro.IncentiveRatio(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := repro.IncentiveRatio(ctx, g, 0, repro.WithCertificate(&c))
	if err != nil {
		t.Fatal(err)
	}
	if !ratio.Equal(plain) {
		t.Fatalf("certified ratio %v differs from plain %v", ratio, plain)
	}
	if c.Ratio == nil {
		t.Fatal("no ratio certificate")
	}
	if err := repro.CheckCertificate(c.Ratio); err != nil {
		t.Fatalf("re-check: %v", err)
	}
	if c.Ratio.Ratio != ratio.String() || !c.Ratio.LeqTwo {
		t.Fatalf("certificate ratio %s leq_two=%v vs answer %v", c.Ratio.Ratio, c.Ratio.LeqTwo, ratio)
	}

	res, err := repro.RingSweep(ctx, g, 0, repro.WithGrid(8), repro.WithCertificate(&c))
	if err != nil {
		t.Fatal(err)
	}
	if c.Sweep == nil {
		t.Fatal("no sweep certificate")
	}
	if err := repro.CheckCertificate(c.Sweep); err != nil {
		t.Fatalf("re-check: %v", err)
	}
	if len(c.Sweep.Points) != len(res.Points) {
		t.Fatalf("certificate covers %d points, sweep has %d", len(c.Sweep.Points), len(res.Points))
	}

	// Tampering with any certified quantity must be caught by the checker.
	forged := *c.Ratio
	forged.Honest = "1"
	if err := repro.CheckCertificate(&forged); err == nil {
		t.Fatal("forged certificate passed CheckCertificate")
	}
}

// TestWithCertificateNonRing: certification follows the call's own
// constraints — Decompose certifies any graph, IncentiveRatio still
// requires a ring.
func TestWithCertificateNonRing(t *testing.T) {
	ctx := context.Background()
	ws := []repro.Rat{repro.NewRat(2, 1), repro.NewRat(1, 3), repro.NewRat(4, 1)}
	path := repro.Path(ws)

	var c repro.Certificate
	if _, err := repro.Decompose(ctx, path, repro.WithCertificate(&c)); err != nil {
		t.Fatal(err)
	}
	if c.Decomposition == nil {
		t.Fatal("no decomposition certificate for a path graph")
	}
	if err := repro.CheckCertificate(c.Decomposition); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.IncentiveRatio(ctx, path, 0, repro.WithCertificate(&c)); err == nil {
		t.Fatal("IncentiveRatio accepted a non-ring graph")
	}
}

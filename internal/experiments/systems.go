package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bottleneck"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/numeric"
	"repro/internal/p2p"
)

// E10DynamicsConvergence reproduces the Proposition 6 convergence claim as
// a series: L∞ utility error of the proportional response dynamics against
// the exact BD utilities, per round, on several instance shapes — including
// the degenerate α = 1 instance with its Θ(1/t) tail.
func E10DynamicsConvergence(maxRounds int) (*Table, error) {
	if maxRounds <= 0 {
		maxRounds = 1 << 14
	}
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring 1-7-2-9-3", graph.Ring(numeric.Ints(1, 7, 2, 9, 3))},
		{"path 1-100-2", graph.Path(numeric.Ints(1, 100, 2))},
		{"complete 3-1-4-1-5", graph.Complete(numeric.Ints(3, 1, 4, 1, 5))},
		{"degenerate ring 512-512-1024 (Θ(1/t))", graph.Ring(numeric.Ints(512, 512, 1024))},
	}
	cols := []string{"rounds"}
	for _, it := range instances {
		cols = append(cols, it.name)
	}
	t := NewTable("E10 / Prop. 6 — dynamics convergence to the BD allocation (L-inf utility error)", cols...)
	var checkpoints []int
	for r := 1; r <= maxRounds; r *= 4 {
		checkpoints = append(checkpoints, r)
	}
	series := make([][]float64, len(instances))
	for i, it := range instances {
		d, err := bottleneck.Decompose(it.g)
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", it.name, err)
		}
		res, err := dynamics.Run(it.g, dynamics.Options{
			MaxRounds:       maxRounds,
			Tol:             1e-300,
			TargetUtilities: d.Utilities(it.g),
		})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", it.name, err)
		}
		series[i] = res.UtilityError
	}
	for _, r := range checkpoints {
		row := make([]any, 0, len(instances)+1)
		row = append(row, r)
		for i := range instances {
			idx := r
			if idx >= len(series[i]) {
				idx = len(series[i]) - 1
			}
			row = append(row, fmt.Sprintf("%.3e", series[i][idx]))
		}
		t.Add(row...)
	}
	// Shape checks: geometric decay on the regular instances, 1/t on the
	// degenerate one.
	for i := range instances[:3] {
		first, last := series[i][1], series[i][len(series[i])-1]
		if first > 1e-12 && last > first/1e3 {
			return t, fmt.Errorf("E10 %s: error decayed only %v → %v", instances[i].name, first, last)
		}
	}
	deg := series[3]
	q1, q2 := deg[maxRounds/4], deg[maxRounds-1]
	if q2 > 0 && !(q1/q2 > 2 && q1/q2 < 8) {
		return t, fmt.Errorf("E10 degenerate: expected ~4x decay over 4x rounds (Θ(1/t)), got %vx", q1/q2)
	}
	t.Note("regular instances decay geometrically; the α=1 degenerate ring decays as Θ(1/t) (×4 rounds ≈ ×4 accuracy)")
	return t, nil
}

// E12SolverAblation times the engineering alternatives on identical inputs:
// Dinic vs push–relabel max-flow inside the parametric solver, and the
// general flow decomposition vs the path/cycle DP on rings.
func E12SolverAblation(sizes []int, trials int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64}
	}
	if trials <= 0 {
		trials = 3
	}
	t := NewTable("E12 / ablation — decomposition engines, max-flow solvers, and the incremental optimizer on rings",
		"n", "flow+dinic", "push-relabel", "edmonds-karp", "path-dp", "dp speedup vs dinic",
		"opt cold", "opt incr", "incr speedup", "results equal")
	rng := rand.New(rand.NewSource(7))
	for _, n := range sizes {
		g := graph.RandomRing(rng, n, graph.DistUniform)
		timeIt := func(f func() (*bottleneck.Decomposition, error)) (time.Duration, *bottleneck.Decomposition, error) {
			var best time.Duration
			var dec *bottleneck.Decomposition
			for k := 0; k < trials; k++ {
				t0 := time.Now()
				d, err := f()
				el := time.Since(t0)
				if err != nil {
					return 0, nil, err
				}
				if k == 0 || el < best {
					best = el
				}
				dec = d
			}
			return best, dec, nil
		}
		tDinic, dFlow, err := timeIt(func() (*bottleneck.Decomposition, error) {
			return bottleneck.DecomposeWith(g, bottleneck.EngineFlow)
		})
		if err != nil {
			return t, fmt.Errorf("E12: %w", err)
		}
		tDP, dDP, err := timeIt(func() (*bottleneck.Decomposition, error) {
			return bottleneck.DecomposeWith(g, bottleneck.EnginePathDP)
		})
		if err != nil {
			return t, fmt.Errorf("E12: %w", err)
		}
		// Push–relabel variant is exercised at the raw max-flow level on
		// the λ-network implied by the ring (the decomposition API pins
		// Dinic); build one comparable instance.
		tPR := timeMaxflow(g, maxflow.PushRelabel, trials)
		tEK := timeMaxflow(g, maxflow.EdmondsKarp, trials)
		equal := dFlow.StructureSignature() == dDP.StructureSignature()
		if !equal {
			return t, fmt.Errorf("E12: engines disagree at n=%d", n)
		}
		// Second ablation axis: a full split optimization with the
		// incremental engine (shared transfers, warm Dinkelbach, eval cache)
		// against the same search forced onto from-scratch decompositions.
		tCold, tIncr, err := timeOptimize(g, trials)
		if err != nil {
			return t, fmt.Errorf("E12 n=%d: %w", n, err)
		}
		speedup := float64(tDinic) / float64(max(tDP, time.Nanosecond))
		optSpeedup := float64(tCold) / float64(max(tIncr, time.Nanosecond))
		t.Add(n, tDinic, tPR, tEK, tDP, fmt.Sprintf("%.1fx", speedup),
			tCold, tIncr, fmt.Sprintf("%.1fx", optSpeedup), equal)
	}
	t.Note("identical decompositions from every engine; the path/cycle DP wins by a growing factor in n; the incremental optimizer pays for its caches below n ≈ 16 and wins by a growing factor past it")
	return t, nil
}

// timeOptimize times Instance.Optimize on g (attacker at vertex 0) with the
// incremental machinery off and on, returning the best of trials runs each.
// Both runs compute identical results (enforced exactly).
func timeOptimize(g *graph.Graph, trials int) (cold, incr time.Duration, err error) {
	run := func(opts core.OptimizeOptions) (time.Duration, *core.OptResult, error) {
		var best time.Duration
		var opt *core.OptResult
		for k := 0; k < trials; k++ {
			in, err := core.NewInstance(g, 0)
			if err != nil {
				return 0, nil, err
			}
			t0 := time.Now()
			o, err := in.Optimize(opts)
			el := time.Since(t0)
			if err != nil {
				return 0, nil, err
			}
			if k == 0 || el < best {
				best = el
			}
			opt = o
		}
		return best, opt, nil
	}
	const grid = 16
	cold, oCold, err := run(core.OptimizeOptions{Grid: grid, DisableEvalCache: true, DisableIncremental: true})
	if err != nil {
		return 0, 0, err
	}
	incr, oIncr, err := run(core.OptimizeOptions{Grid: grid})
	if err != nil {
		return 0, 0, err
	}
	if !oCold.BestW1.Equal(oIncr.BestW1) || !oCold.BestU.Equal(oIncr.BestU) || !oCold.Ratio.Equal(oIncr.Ratio) {
		return 0, 0, fmt.Errorf("incremental optimizer diverged: cold (w1=%v U=%v) vs incr (w1=%v U=%v)",
			oCold.BestW1, oCold.BestU, oIncr.BestW1, oIncr.BestU)
	}
	return cold, incr, nil
}

// timeMaxflow times one solve of the parametric λ = 1 network for g.
func timeMaxflow(g *graph.Graph, algo maxflow.Algorithm, trials int) time.Duration {
	build := func() *maxflow.Network {
		n := g.N()
		nw := maxflow.NewNetwork(2*n+2, 2*n, 2*n+1)
		for v := 0; v < n; v++ {
			nw.AddEdge(2*n, v, maxflow.Finite(g.Weight(v)))
			nw.AddEdge(n+v, 2*n+1, maxflow.Finite(g.Weight(v)))
			for _, u := range g.Neighbors(v) {
				nw.AddEdge(v, n+u, maxflow.Inf)
			}
		}
		return nw
	}
	var best time.Duration
	for k := 0; k < trials; k++ {
		nw := build()
		t0 := time.Now()
		nw.Solve(algo)
		el := time.Since(t0)
		if k == 0 || el < best {
			best = el
		}
	}
	return best
}

// E14SwarmAttack runs the message-passing swarm honestly and under the
// exact optimizer's best Sybil split, comparing the realized gain with the
// exact prediction (the motivation scenario of Section I).
func E14SwarmAttack(rounds int) (*Table, error) {
	if rounds <= 0 {
		rounds = 20000
	}
	t := NewTable("E14 / P2P swarm under Sybil attack (message-passing protocol)",
		"instance", "honest U_v", "sybil U_v1+U_v2", "swarm gain", "exact prediction", "messages")
	instances := []struct {
		name string
		g    *graph.Graph
		v    int
	}{
		{"lower-bound family k=2, H=100", mustRing(numeric.Ints(100, 1, 1, 1, 1, 1, 1, 1, 1)), 3},
		{"uniform random ring n=8", graph.RandomRing(rand.New(rand.NewSource(9)), 8, graph.DistUniform), 2},
		{"unit ring n=6 (no gain)", mustRing(numeric.Ints(1, 1, 1, 1, 1, 1)), 0},
	}
	for _, it := range instances {
		in, err := core.NewInstance(it.g, it.v)
		if err != nil {
			return t, fmt.Errorf("E14 %s: %w", it.name, err)
		}
		opt, err := in.Optimize(core.OptimizeOptions{Grid: 32})
		if err != nil {
			return t, fmt.Errorf("E14 %s: %w", it.name, err)
		}
		ring, err := it.g.RingOrder(it.v)
		if err != nil {
			return t, err
		}
		spec := graph.SplitSpec{
			V:       it.v,
			Parts:   [][]int{{ring[1]}, {ring[len(ring)-1]}},
			Weights: []numeric.Rat{opt.BestW1, it.g.Weight(it.v).Sub(opt.BestW1)},
		}
		cmp, err := p2p.CompareAttack(it.g, spec, p2p.Config{Rounds: rounds})
		if err != nil {
			return t, fmt.Errorf("E14 %s: %w", it.name, err)
		}
		predicted := opt.Ratio.Float64()
		t.Add(it.name, fmtF(cmp.HonestUtility), fmtF(cmp.SybilUtility),
			fmtF(cmp.Gain), fmtF(predicted), cmp.Honest.Messages+cmp.Sybil.Messages)
		if cmp.Gain > 2.001 {
			return t, fmt.Errorf("E14 %s: swarm gain %v exceeds 2", it.name, cmp.Gain)
		}
		if cmp.Gain < predicted-0.15 {
			return t, fmt.Errorf("E14 %s: swarm gain %v far below exact prediction %v", it.name, cmp.Gain, predicted)
		}
	}
	t.Note("the deployed-protocol simulation realizes the exact mechanism's predicted gains; nothing exceeds 2")
	return t, nil
}

func mustRing(ws []numeric.Rat) *graph.Graph { return graph.Ring(ws) }

package bottleneck_test

import (
	"fmt"

	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Decompose the paper's Fig. 1 example and read off classes and utilities.
func ExampleDecompose() {
	g := graph.Fig1Graph()
	d, err := bottleneck.Decompose(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	fmt.Println("v3:", d.ClassOf(2), "α =", d.AlphaOf(2), "U =", d.Utility(g, 2))
	// Output:
	// (B1{0,1}, C1{2}, α=1/3) (B2{3,4,5}, C2{3,4,5}, α=1)
	// v3: C α = 1/3 U = 6
}

// The maximal bottleneck absorbs vertices whose neighborhoods are already
// covered, even at zero marginal α cost.
func ExampleMaxBottleneck() {
	g := graph.Path(numeric.Ints(1, 2, 100, 2, 1))
	B, alpha, err := bottleneck.MaxBottleneck(g, bottleneck.EngineAuto)
	if err != nil {
		panic(err)
	}
	fmt.Println(B, alpha)
	// Output:
	// [0 2 4] 2/51
}

// Trace the Dinkelbach iterations of a two-stage ring decomposition.
func ExampleDecomposeTraced() {
	g := graph.Ring(numeric.Ints(1, 100, 1, 5, 5))
	_, err := bottleneck.DecomposeTraced(g, bottleneck.EngineAuto, func(e bottleneck.TraceEvent) {
		if e.Kind == bottleneck.TraceStageExtracted {
			fmt.Println(e)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// stage 1: extracted (B{1}, C{0,2}, α=1/50)
	// stage 2: extracted (B{3,4}, C{3,4}, α=1)
}

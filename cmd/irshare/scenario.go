package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/scenario"
)

// scenarioArgs carries the parsed scenario flags into runScenario.
type scenarioArgs struct {
	kind     string
	v, k     int
	grid     int
	members  string
	families string
	count, n int
	seed     int64
	dist     string
	mech     string
}

// runScenario executes one strategic-manipulation scan locally — the same
// engines the /v1/scenario endpoint and the scenario job kinds run, printed
// as a report.
func runScenario(w io.Writer, g *graph.Graph, a scenarioArgs) error {
	ctx := context.Background()
	m, err := mechanism.Get(a.mech)
	if err != nil {
		return err
	}
	switch a.kind {
	case "ksybil":
		if g == nil {
			return fmt.Errorf("ksybil requires a graph")
		}
		if a.v < 0 {
			return fmt.Errorf("ksybil requires -v <agent>")
		}
		res, err := scenario.KSybil(ctx, g, a.v, scenario.KSybilOptions{K: a.k, Grid: a.grid, Mechanism: m})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "k-identity Sybil: agent %s splits into %d identities, grid %d (%d points)\n",
			g.Label(a.v), a.k, a.grid, res.Total)
		fmt.Fprintf(w, "  honest U = %s\n", res.Honest)
		fmt.Fprintf(w, "  best split c = %v (index %d), attack U = %s\n", res.BestComp, res.BestIndex, res.BestU)
		fmt.Fprintf(w, "  incentive ratio ζ = %s ≈ %.6f\n", res.Ratio, res.Ratio.Float64())
		return nil

	case "coalition":
		if g == nil {
			return fmt.Errorf("coalition requires a graph")
		}
		members, err := parseInts(a.members)
		if err != nil {
			return fmt.Errorf("bad -members: %w", err)
		}
		res, err := scenario.Coalition(ctx, g, scenario.CoalitionOptions{Members: members, Grid: a.grid, Mechanism: m})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "coalition: members %v, grid %d (%d points)\n", members, a.grid, res.Total)
		fmt.Fprintf(w, "  honest joint U = %s, best joint U = %s (digits %v)\n",
			res.HonestJoint, res.BestJoint, res.BestDigits)
		fmt.Fprintf(w, "  joint ratio = %s ≈ %.6f\n", res.JointRatio, res.JointRatio.Float64())
		for j, v := range members {
			fmt.Fprintf(w, "  member %-4s honest=%-12s best=%-12s gain=%-12s ratio=%s\n",
				g.Label(v), res.Honest[j], res.BestMember[j], res.Gains[j], res.MemberRatios[j])
		}
		return nil

	case "topology":
		fams := scenario.Families()
		if a.families != "" {
			fams = strings.Split(a.families, ",")
		}
		dist, err := parseDistName(a.dist)
		if err != nil {
			return err
		}
		res, err := scenario.Topology(ctx, scenario.TopologyOptions{
			Families: fams, Count: a.count, N: a.n, Grid: a.grid,
			Seed: a.seed, Dist: dist, Mechanism: m,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "topology scan: %d instances (%d per family), n=%d, grid=%d, seed=%d\n",
			res.Total, a.count, a.n, a.grid, a.seed)
		for _, s := range res.Summaries {
			if s.Unbounded {
				fmt.Fprintf(w, "  %-10s worst instance #%d: UNBOUNDED (deviation U = %s from zero honest U)\n",
					s.Family, s.WorstIndex, s.WorstRatio)
				continue
			}
			fmt.Fprintf(w, "  %-10s worst instance #%d: ratio = %s ≈ %.6f\n",
				s.Family, s.WorstIndex, s.WorstRatio, s.WorstRatio.Float64())
		}
		return nil

	case "":
		return fmt.Errorf("scenario requires -kind ksybil|coalition|topology")
	default:
		return fmt.Errorf("unknown scenario kind %q", a.kind)
	}
}

// parseInts parses a comma-separated vertex list.
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// parseDistName maps the CLI distribution names (the same vocabulary as the
// /v1/scenario "dist" field) onto graph.WeightDist.
func parseDistName(name string) (graph.WeightDist, error) {
	switch name {
	case "", "uniform":
		return graph.DistUniform, nil
	case "skewed":
		return graph.DistSkewed, nil
	case "powers":
		return graph.DistPowers, nil
	case "unit":
		return graph.DistUnit, nil
	}
	return 0, fmt.Errorf("unknown weight distribution %q", name)
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/mechanism"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Mechanism-aware plumbing: every compute endpoint that accepts a
// "mechanism" field resolves it here, and all derived state — cache
// entries, micro-batches, resume tokens, durable job dedup — is scoped by
// mechKey, so backends never share or mix results.

// resolveWireMechanism maps the wire mechanism name ("" = bd) to its
// backend, answering 400 unknown_mechanism on failure.
func resolveWireMechanism(w http.ResponseWriter, name string) (mechanism.Mechanism, bool) {
	m, err := mechanism.Get(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeUnknownMechanism, err.Error())
		return nil, false
	}
	return m, true
}

// mechCertifiable reports whether m can build exact certificates — the gate
// behind every ?cert=1 path: non-certifiable mechanisms answer cert_limit.
func mechCertifiable(m mechanism.Mechanism) bool {
	c, ok := m.(mechanism.Certifier)
	return ok && c.Certifiable()
}

// mechKey scopes a canonical instance key by mechanism. The default backend
// keeps the bare CanonicalKey — preserving every pre-mechanism cache entry,
// resume token and job address bit for bit — while any other backend gets a
// ";m=<name>" suffix. The suffix rides along wherever the entry key goes
// (batch keys, resume tokens, job keys), which is exactly what makes those
// artifacts mechanism-scoped without any second bookkeeping channel.
func mechKey(g *graph.Graph, m mechanism.Mechanism) string {
	key := CanonicalKey(g)
	if m.Name() != mechanism.Default {
		key += ";m=" + m.Name()
	}
	return key
}

// PlacementKey derives the mechanism-scoped canonical instance key of a
// wire graph — the exact string the server uses for cache entries, batch
// joins, resume tokens, and job dedup addresses. Cluster routers hash it to
// pick a backend, so a given instance always lands where its cache and jobs
// already live. Name "" selects the default mechanism, mirroring the wire
// field.
func PlacementKey(wg *WireGraph, name string) (string, error) {
	g, err := wg.Build()
	if err != nil {
		return "", err
	}
	m, err := mechanism.Get(name)
	if err != nil {
		return "", err
	}
	return mechKey(g, m), nil
}

// entryForMech is entryForWire with a mechanism-scoped cache key.
func (s *Server) entryForMech(w http.ResponseWriter, r *http.Request, wg *WireGraph, m mechanism.Mechanism) (*cacheEntry, bool) {
	return s.entryForKeyed(w, r, wg, func(g *graph.Graph) string { return mechKey(g, m) })
}

// MechanismsResponse is the body of GET /v1/mechanisms: every registered
// backend in sorted name order (byte-stable across processes), with its
// capability flags. Any listed name is a valid "mechanism" request field.
type MechanismsResponse struct {
	Default    string           `json:"default"`
	Mechanisms []mechanism.Info `json:"mechanisms"`
}

// handleMechanisms is GET /v1/mechanisms, the discovery endpoint of the
// pluggable-backend layer.
func (s *Server) handleMechanisms(w http.ResponseWriter, r *http.Request) {
	writeResult(w, r, MechanismsResponse{Default: mechanism.Default, Mechanisms: mechanism.Infos()})
}

// Tournament limits: one request fans out |instances| × |mechanisms| full
// sweeps, so both axes are capped tighter than the single-sweep endpoints.
const (
	maxTournamentInstances = 32
	maxTournamentGrid      = 1024
)

// TournamentWireInstance is one tournament arena: a ring graph and the
// attacker vertex whose Sybil split curve is swept under every mechanism.
type TournamentWireInstance struct {
	Graph WireGraph `json:"graph"`
	V     int       `json:"v"`
}

// TournamentRequest is the body of POST /v1/tournament: evaluate every
// selected mechanism (empty = all registered) on every instance under the
// identical attack grid (0 = default 64).
type TournamentRequest struct {
	Instances  []TournamentWireInstance `json:"instances"`
	Mechanisms []string                 `json:"mechanisms,omitempty"`
	Grid       int                      `json:"grid,omitempty"`
}

// WireTournamentCell is one (instance, mechanism) evaluation.
type WireTournamentCell struct {
	Mechanism  string `json:"mechanism"`
	Efficiency string `json:"efficiency"`
	Fairness   string `json:"fairness"`
	Honest     string `json:"honest"`
	BestW1     string `json:"best_w1"`
	BestU      string `json:"best_u"`
	Ratio      string `json:"ratio"`
}

// WireMechanismSummary aggregates one mechanism's column over all instances.
type WireMechanismSummary struct {
	Mechanism       string `json:"mechanism"`
	Instances       int    `json:"instances"`
	MaxRatio        string `json:"max_ratio"`
	MeanRatio       string `json:"mean_ratio"`
	MinFairness     string `json:"min_fairness"`
	TotalEfficiency string `json:"total_efficiency"`
}

// TournamentResponse is the body of a /v1/tournament answer (and the final
// Result of a durable tournament job): Cells[i][j] is instance i under
// Mechanisms[j] (sorted), so the layout is deterministic and byte-stable.
type TournamentResponse struct {
	Mechanisms []string               `json:"mechanisms"`
	Grid       int                    `json:"grid"`
	Cells      [][]WireTournamentCell `json:"cells"`
	Summary    []WireMechanismSummary `json:"summary"`
}

func wireCell(c mechanism.Cell) WireTournamentCell {
	return WireTournamentCell{
		Mechanism:  c.Mechanism,
		Efficiency: EncodeRat(c.Efficiency),
		Fairness:   EncodeRat(c.Fairness),
		Honest:     EncodeRat(c.Honest),
		BestW1:     EncodeRat(c.BestW1),
		BestU:      EncodeRat(c.BestU),
		Ratio:      EncodeRat(c.Ratio),
	}
}

func wireTournament(res *mechanism.TournamentResult) *TournamentResponse {
	out := &TournamentResponse{
		Mechanisms: res.Mechanisms,
		Grid:       res.Grid,
		Cells:      make([][]WireTournamentCell, len(res.Cells)),
		Summary:    make([]WireMechanismSummary, len(res.Summary)),
	}
	for i, row := range res.Cells {
		out.Cells[i] = make([]WireTournamentCell, len(row))
		for j, c := range row {
			out.Cells[i][j] = wireCell(c)
		}
	}
	for j, s := range res.Summary {
		out.Summary[j] = WireMechanismSummary{
			Mechanism:       s.Mechanism,
			Instances:       s.Instances,
			MaxRatio:        EncodeRat(s.MaxRatio),
			MeanRatio:       EncodeRat(s.MeanRatio),
			MinFairness:     EncodeRat(s.MinFairness),
			TotalEfficiency: EncodeRat(s.TotalEfficiency),
		}
	}
	return out
}

// validateTournament resolves and validates a tournament request shared by
// the inline endpoint and job submission: mechanism set (sorted, deduped),
// grid bounds, and per-instance ring/agent checks. The returned instance
// keys are the bare canonical keys in request order.
func (s *Server) validateTournament(w http.ResponseWriter, req *TournamentRequest) (insts []mechanism.TournamentInstance, keys, names []string, grid int, ok bool) {
	names, err := mechanism.ResolveSet(req.Mechanisms)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeUnknownMechanism, err.Error())
		return nil, nil, nil, 0, false
	}
	grid = req.Grid
	if grid == 0 {
		grid = 64
	}
	if grid < 0 || grid > maxTournamentGrid {
		writeError(w, http.StatusBadRequest, CodeBadGrid, fmt.Sprintf("grid outside [1, %d]", maxTournamentGrid))
		return nil, nil, nil, 0, false
	}
	if len(req.Instances) == 0 || len(req.Instances) > maxTournamentInstances {
		writeError(w, http.StatusBadRequest, CodeBadGraph,
			fmt.Sprintf("tournament needs between 1 and %d instances, got %d", maxTournamentInstances, len(req.Instances)))
		return nil, nil, nil, 0, false
	}
	for i := range req.Instances {
		g, err := req.Instances[i].Graph.Build()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadGraph, fmt.Sprintf("instances[%d]: %v", i, err))
			return nil, nil, nil, 0, false
		}
		if !g.IsRing() {
			writeError(w, http.StatusBadRequest, CodeNotRing, fmt.Sprintf("instances[%d]: tournament requires ring graphs", i))
			return nil, nil, nil, 0, false
		}
		v := req.Instances[i].V
		if v < 0 || v >= g.N() {
			writeError(w, http.StatusBadRequest, CodeBadAgent,
				fmt.Sprintf("instances[%d]: agent %d out of range [0, %d)", i, v, g.N()))
			return nil, nil, nil, 0, false
		}
		insts = append(insts, mechanism.TournamentInstance{G: g, V: v})
		keys = append(keys, CanonicalKey(g))
	}
	return insts, keys, names, grid, true
}

// handleTournament is POST /v1/tournament: the inline head-to-head run.
// For long grids or many instances, submit a kind "tournament" job instead
// — same validation, same final body, durable across restarts.
func (s *Server) handleTournament(w http.ResponseWriter, r *http.Request) {
	var req TournamentRequest
	if !decodeBody(w, r, &req) {
		return
	}
	insts, _, names, grid, ok := s.validateTournament(w, &req)
	if !ok {
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	cctx, csp := obs.Start(ctx, "server.compute")
	res, err := mechanism.Tournament(cctx, insts, mechanism.TournamentOptions{Mechanisms: names, Grid: grid})
	csp.End()
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	writeResult(w, r, wireTournament(res))
}

// tournamentJobKey is the content address of one tournament job: the
// canonical instance keys with their attacker vertices, the grid, and the
// resolved mechanism set — the complete determinants of the result.
func tournamentJobKey(keys []string, vs []int, grid int, names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tournament|grid=%d|m=%s|i=", grid, strings.Join(names, ","))
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s@%d", k, vs[i])
	}
	return b.String()
}

// tournamentJobSpec is the persisted specification of a tournament job: the
// validated instances in canonical wire form, the resolved (sorted) set of
// mechanisms, the grid, and the pinned cell count. Cells are addressed
// row-major — cell k is instance k/len(M) under mechanism k%len(M) — so
// progress and resume never depend on re-deriving the layout.
type tournamentJobSpec struct {
	Instances  []TournamentWireInstance `json:"instances"`
	Mechanisms []string                 `json:"mechanisms"`
	Grid       int                      `json:"grid"`
	Total      int                      `json:"total"`
}

// submitTournamentJob validates and enqueues a kind "tournament" job.
func (s *Server) submitTournamentJob(w http.ResponseWriter, r *http.Request, req *JobSubmitRequest) {
	var tr TournamentRequest
	if req.Tournament != nil {
		tr = *req.Tournament
	}
	insts, keys, names, grid, ok := s.validateTournament(w, &tr)
	if !ok {
		return
	}
	spec := tournamentJobSpec{
		Instances:  make([]TournamentWireInstance, len(tr.Instances)),
		Mechanisms: names,
		Grid:       grid,
		Total:      len(insts) * len(names),
	}
	vs := make([]int, len(insts))
	for i, inst := range tr.Instances {
		spec.Instances[i] = inst
		vs[i] = inst.V
	}
	seed, ok := seedPoints(w, req.Checkpoint, spec.Total)
	if !ok {
		return
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	rec, enqueued, err := s.jobSched.Submit(r.Context(), jobs.Submission{
		Key:      tournamentJobKey(keys, vs, grid, names),
		Kind:     "tournament",
		Spec:     raw,
		Priority: req.Priority,
		Seed:     seed,
	})
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	status := http.StatusAccepted
	if !enqueued {
		status = http.StatusOK
	}
	writeJSON(w, status, JobSubmitResponse{Job: wireJob(rec, false), Deduped: !enqueued})
}

// Tournament-job checkpoints reuse the sweep Point shape: W1 carries the
// row-major cell index in decimal, U the WireTournamentCell JSON. Exact
// rationals serialize canonically inside the cell, so a replayed checkpoint
// re-enters the final answer bit for bit.
func encodeTournamentCell(idx int, c mechanism.Cell) (jobs.Point, error) {
	raw, err := json.Marshal(wireCell(c))
	if err != nil {
		return jobs.Point{}, err
	}
	return jobs.Point{W1: strconv.Itoa(idx), U: string(raw)}, nil
}

func decodeTournamentCell(p jobs.Point) (mechanism.Cell, error) {
	var wc WireTournamentCell
	if err := json.Unmarshal([]byte(p.U), &wc); err != nil {
		return mechanism.Cell{}, fmt.Errorf("checkpoint cell %s: %w", p.W1, err)
	}
	c := mechanism.Cell{Mechanism: wc.Mechanism}
	var err error
	for _, f := range []struct {
		s   string
		dst *numeric.Rat
	}{
		{wc.Efficiency, &c.Efficiency}, {wc.Fairness, &c.Fairness},
		{wc.Honest, &c.Honest}, {wc.BestW1, &c.BestW1},
		{wc.BestU, &c.BestU}, {wc.Ratio, &c.Ratio},
	} {
		if *f.dst, err = DecodeRat(f.s); err != nil {
			return mechanism.Cell{}, fmt.Errorf("checkpoint cell %s: %w", p.W1, err)
		}
	}
	return c, nil
}

// runTournamentJob executes one tournament job cell by cell, checkpointing
// each completed (instance, mechanism) evaluation so a restart resumes at
// the first unevaluated cell. The cell order is pinned (row-major over the
// persisted spec), the evaluations are exact, and the summaries are
// recomputed from the full cell matrix at the end — so the final Result is
// bit-identical whether or not the job was ever interrupted.
func (s *Server) runTournamentJob(ctx context.Context, rec *jobs.Record, ckpt jobs.CheckpointFunc) ([]byte, error) {
	var spec tournamentJobSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return nil, fmt.Errorf("corrupt job spec: %w", err)
	}
	if len(spec.Mechanisms) == 0 || len(spec.Instances) == 0 {
		return nil, fmt.Errorf("corrupt job spec: empty instance or mechanism set")
	}
	if s.collector != nil {
		tr := s.collector.NewTrace("jobs.run")
		ctx = tr.Context(ctx)
		defer tr.Finish()
	}
	ctx, span := obs.Start(ctx, "jobs.tournament")
	defer span.End()
	if span != nil {
		span.SetAttr("job", rec.ID)
		span.SetAttr("total", strconv.Itoa(spec.Total))
		if rec.NextIndex > 0 {
			span.SetAttr("resume_from", strconv.Itoa(rec.NextIndex))
		}
	}
	gs := make([]*graph.Graph, len(spec.Instances))
	for i := range spec.Instances {
		g, err := spec.Instances[i].Graph.Build()
		if err != nil {
			return nil, fmt.Errorf("job spec instance %d: %w", i, err)
		}
		gs[i] = g
	}
	nm := len(spec.Mechanisms)
	cells := make([]mechanism.Cell, 0, spec.Total)
	for _, p := range rec.Points {
		c, err := decodeTournamentCell(p)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	for k := rec.NextIndex; k < spec.Total; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i, j := k/nm, k%nm
		m, err := mechanism.Get(spec.Mechanisms[j])
		if err != nil {
			return nil, fmt.Errorf("job spec mechanism: %w", err)
		}
		cell, err := mechanism.EvaluateCell(ctx, m, gs[i], spec.Instances[i].V, spec.Grid, 0)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("cell %d (instance %d, %s): %w", k, i, spec.Mechanisms[j], err)
		}
		pt, err := encodeTournamentCell(k, cell)
		if err != nil {
			return nil, err
		}
		if err := ckpt(k, []jobs.Point{pt}); err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	matrix := make([][]mechanism.Cell, len(spec.Instances))
	for i := range matrix {
		matrix[i] = cells[i*nm : (i+1)*nm]
	}
	return json.Marshal(wireTournament(mechanism.Summarize(spec.Mechanisms, spec.Grid, matrix)))
}

// Package experiments drives the paper-reproduction experiments E1–E14
// cataloged in DESIGN.md §4: one driver per figure or headline result, each
// returning plain-text tables that EXPERIMENTS.md records and bench_test.go
// regenerates. Drivers validate their own expectations (e.g. "every ratio
// ≤ 2") and report verdicts in the tables, so a regression shows up as a
// failed check, not just a changed number.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a column-oriented result table rendering as aligned text or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines printed after the table (assumptions,
	// verdicts, parameter choices).
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells for %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes-free cells are
// assumed; cells containing commas or quotes are escaped).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scale bounds an experiment's workload so the same drivers serve both the
// quick bench targets and the full cmd/experiments regeneration.
type Scale struct {
	// Trials is the number of random instances per table cell.
	Trials int
	// RingSizes lists the ring sizes swept by the ring experiments.
	RingSizes []int
	// OptGrid is the split optimizer's grid resolution.
	OptGrid int
	// Seed makes the sweeps reproducible.
	Seed int64
	// DynRounds bounds dynamics/swarm rounds.
	DynRounds int
}

// Quick is the scale used by unit tests and benchmarks.
var Quick = Scale{Trials: 4, RingSizes: []int{5, 8, 11}, OptGrid: 16, Seed: 1, DynRounds: 2000}

// Full is the scale used by cmd/experiments for the recorded results.
var Full = Scale{Trials: 20, RingSizes: []int{4, 6, 8, 10, 12, 16}, OptGrid: 64, Seed: 1, DynRounds: 20000}

func fmtF(x float64) string { return fmt.Sprintf("%.6f", x) }

package mechanism

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

// TournamentInstance is one arena: a ring graph and the designated attacker
// vertex whose Sybil split curve is swept under every competing mechanism.
type TournamentInstance struct {
	G *graph.Graph
	V int
}

// TournamentOptions tunes Tournament. Zero values select defaults.
type TournamentOptions struct {
	// Mechanisms selects the competitors by name (empty = every registered
	// mechanism). The set is sorted and deduplicated, so output order never
	// depends on input or registration order.
	Mechanisms []string
	// Grid is the sweep resolution shared by every cell (default 64).
	Grid int
	// Workers bounds per-sweep parallelism (≤ 0 = GOMAXPROCS).
	Workers int
}

// Cell is one (instance, mechanism) evaluation: the honest allocation's
// aggregate metrics plus the empirical Sybil sweep outcome.
type Cell struct {
	// Mechanism is the backend's registry name.
	Mechanism string `json:"mechanism"`
	// Efficiency is the total utility Σ_v U_v of the honest allocation.
	Efficiency numeric.Rat `json:"efficiency"`
	// Fairness is min_v U_v / max_v U_v (1 when every utility is zero).
	Fairness numeric.Rat `json:"fairness"`
	// Honest is the attacker's utility without splitting.
	Honest numeric.Rat `json:"honest"`
	// BestW1/BestU is the best two-identity split found on the grid.
	BestW1 numeric.Rat `json:"best_w1"`
	BestU  numeric.Rat `json:"best_u"`
	// Ratio is the empirical incentive ratio BestU/Honest on the grid.
	Ratio numeric.Rat `json:"ratio"`
}

// MechanismSummary aggregates one mechanism's column across all instances.
type MechanismSummary struct {
	Mechanism       string      `json:"mechanism"`
	Instances       int         `json:"instances"`
	MaxRatio        numeric.Rat `json:"max_ratio"`
	MeanRatio       numeric.Rat `json:"mean_ratio"`
	MinFairness     numeric.Rat `json:"min_fairness"`
	TotalEfficiency numeric.Rat `json:"total_efficiency"`
}

// TournamentResult is the full head-to-head outcome: the cell matrix in
// (instance, sorted mechanism) order plus per-mechanism summaries.
type TournamentResult struct {
	Mechanisms []string `json:"mechanisms"`
	Grid       int      `json:"grid"`
	// Cells[i][j] is instance i under Mechanisms[j].
	Cells   [][]Cell           `json:"cells"`
	Summary []MechanismSummary `json:"summary"`
}

// ResolveSet validates and canonicalizes a mechanism name selection: empty
// input selects every registered mechanism; otherwise each name must
// resolve, and the result is sorted and deduplicated.
func ResolveSet(names []string) ([]string, error) {
	if len(names) == 0 {
		return Names(), nil
	}
	seen := make(map[string]bool, len(names))
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n == "" {
			n = Default
		}
		if _, err := Get(n); err != nil {
			return nil, err
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// EvaluateCell runs one (instance, mechanism) cell: the honest allocation's
// efficiency and fairness, then the full Sybil sweep for the empirical
// incentive ratio. It is the unit of work the durable tournament job
// checkpoints on, so it must stay deterministic and self-contained.
func EvaluateCell(ctx context.Context, m Mechanism, g *graph.Graph, v int, grid, workers int) (Cell, error) {
	a, err := m.Allocate(ctx, g)
	if err != nil {
		return Cell{}, fmt.Errorf("mechanism %s: honest allocation: %w", m.Name(), err)
	}
	utils := a.Utilities()
	cell := Cell{
		Mechanism:  m.Name(),
		Efficiency: numeric.Sum(utils),
		Fairness:   fairness(utils),
	}
	sw, err := RingSweep(ctx, m, g, v, sybil.SweepOptions{Grid: grid, Workers: workers})
	if err != nil {
		return Cell{}, fmt.Errorf("mechanism %s: sweep: %w", m.Name(), err)
	}
	if sw.Partial {
		return Cell{}, ctx.Err()
	}
	cell.Honest = sw.Honest
	cell.BestW1 = sw.BestW1
	cell.BestU = sw.BestU
	cell.Ratio = sw.Ratio
	return cell, nil
}

// fairness is min/max of the utilities, with the all-zero convention of 1.
func fairness(utils []numeric.Rat) numeric.Rat {
	if len(utils) == 0 {
		return numeric.One
	}
	max := numeric.MaxOf(utils)
	if max.IsZero() {
		return numeric.One
	}
	return numeric.MinOf(utils).Div(max)
}

// Tournament evaluates every selected mechanism on every instance under the
// identical attack grid and returns the deterministic cell matrix with
// summaries. Instances keep their input order; mechanisms are sorted.
func Tournament(ctx context.Context, instances []TournamentInstance, opts TournamentOptions) (*TournamentResult, error) {
	if opts.Grid <= 0 {
		opts.Grid = 64
	}
	names, err := ResolveSet(opts.Mechanisms)
	if err != nil {
		return nil, err
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("mechanism: tournament needs at least one instance")
	}
	cells := make([][]Cell, len(instances))
	for i, inst := range instances {
		cells[i] = make([]Cell, len(names))
		for j, name := range names {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m, err := Get(name)
			if err != nil {
				return nil, err
			}
			cell, err := EvaluateCell(ctx, m, inst.G, inst.V, opts.Grid, opts.Workers)
			if err != nil {
				return nil, fmt.Errorf("instance %d: %w", i, err)
			}
			cells[i][j] = cell
		}
	}
	return Summarize(names, opts.Grid, cells), nil
}

// Summarize assembles the TournamentResult from an already-evaluated cell
// matrix (Cells[i][j] = instance i, mechanism names[j]). The durable
// tournament job calls it after replaying checkpointed cells, so summaries
// from a resumed job are bit-identical to an uninterrupted run.
func Summarize(names []string, grid int, cells [][]Cell) *TournamentResult {
	res := &TournamentResult{Mechanisms: names, Grid: grid, Cells: cells}
	for j, name := range names {
		s := MechanismSummary{Mechanism: name}
		sum := numeric.Zero
		for i := range cells {
			c := cells[i][j]
			s.Instances++
			sum = sum.Add(c.Ratio)
			if s.Instances == 1 {
				s.MaxRatio, s.MinFairness = c.Ratio, c.Fairness
			} else {
				s.MaxRatio = s.MaxRatio.Max(c.Ratio)
				s.MinFairness = s.MinFairness.Min(c.Fairness)
			}
			s.TotalEfficiency = s.TotalEfficiency.Add(c.Efficiency)
		}
		if s.Instances > 0 {
			s.MeanRatio = sum.DivInt(int64(s.Instances))
		}
		res.Summary = append(res.Summary, s)
	}
	return res
}

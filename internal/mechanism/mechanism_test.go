package mechanism

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/allocation"
	"repro/internal/bottleneck"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/sybil"
)

func TestRegistryResolution(t *testing.T) {
	names := Names()
	want := []string{"bd", "eqsplit", "pr"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	m, err := Get("")
	if err != nil {
		t.Fatalf("Get(\"\"): %v", err)
	}
	if m.Name() != Default {
		t.Fatalf("Get(\"\") resolved %q, want Default %q", m.Name(), Default)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) succeeded")
	} else if ue, ok := err.(*ErrUnknown); !ok || ue.Name != "nope" {
		t.Fatalf("Get(nope) error = %#v, want *ErrUnknown{nope}", err)
	} else if ue.Error() == "" {
		t.Fatal("empty ErrUnknown message")
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    Mechanism
	}{
		{"duplicate", BD{}},
		{"empty name", named("")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%s) did not panic", tc.name)
				}
			}()
			Register(tc.m)
		})
	}
}

// named is a minimal test mechanism with a configurable name.
type named string

func (n named) Name() string { return string(n) }
func (named) Allocate(context.Context, *graph.Graph) (*allocation.Allocation, error) {
	return nil, nil
}

func TestInfosCapabilities(t *testing.T) {
	infos := Infos()
	byName := make(map[string]Info, len(infos))
	for i, in := range infos {
		byName[in.Name] = in
		if i > 0 && infos[i-1].Name >= in.Name {
			t.Fatalf("Infos not sorted: %q before %q", infos[i-1].Name, in.Name)
		}
		if in.Description == "" {
			t.Errorf("mechanism %q has no description", in.Name)
		}
	}
	bd := byName["bd"]
	if !bd.Certifiable || !bd.ExactRatio {
		t.Fatalf("bd info = %+v, want certifiable and exact_ratio", bd)
	}
	for _, n := range []string{"pr", "eqsplit"} {
		if in := byName[n]; in.Certifiable || in.ExactRatio {
			t.Fatalf("%s info = %+v, want no capabilities", n, in)
		}
	}
}

// corpus returns deterministic mixed test graphs (rings and general).
func corpus(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	var gs []*graph.Graph
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			gs = append(gs, graph.RandomRing(rng, 4+i%5, graph.DistUniform))
		case 1:
			gs = append(gs, graph.RandomConnected(rng, 4+i%4, 0.5, graph.DistSkewed))
		default:
			gs = append(gs, graph.RandomTree(rng, 3+i%5, graph.DistUniform))
		}
	}
	return gs
}

func TestBDMatchesDirectPipeline(t *testing.T) {
	ctx := context.Background()
	m, err := Get("bd")
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range corpus(t, 12) {
		d, err := bottleneck.DecomposeCtx(ctx, g, bottleneck.EngineAuto)
		if err != nil {
			t.Fatalf("graph %d: decompose: %v", i, err)
		}
		want, err := allocation.Compute(g, d)
		if err != nil {
			t.Fatalf("graph %d: compute: %v", i, err)
		}
		got, err := m.Allocate(ctx, g)
		if err != nil {
			t.Fatalf("graph %d: mechanism allocate: %v", i, err)
		}
		assertSameAllocation(t, g, want, got)
	}
}

func assertSameAllocation(t *testing.T, g *graph.Graph, want, got *allocation.Allocation) {
	t.Helper()
	if want.N() != got.N() || want.Support() != got.Support() {
		t.Fatalf("shape mismatch: n %d/%d support %d/%d", want.N(), got.N(), want.Support(), got.Support())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !want.Get(u, v).Equal(got.Get(u, v)) {
				t.Fatalf("x[%d][%d] = %v, want %v", u, v, got.Get(u, v), want.Get(u, v))
			}
		}
	}
}

// TestAllocationInvariants: every backend must conserve endowments — each
// agent with at least one neighbor and positive weight sends out exactly w_v
// (BD exempts isolated/zero-α agents, which the corpus avoids for rings).
func TestAllocationInvariants(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomRing(rng, 4+trial, graph.DistUniform)
		for _, name := range Names() {
			m, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := m.Allocate(ctx, g)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			totalU := numeric.Sum(a.Utilities())
			if !totalU.Equal(g.TotalWeight()) {
				t.Fatalf("%s trial %d: total utility %v, want total weight %v",
					name, trial, totalU, g.TotalWeight())
			}
			for v := 0; v < g.N(); v++ {
				if sent := a.SentBy(v); !sent.Equal(g.Weight(v)) {
					t.Fatalf("%s trial %d: vertex %d sends %v, owns %v",
						name, trial, v, sent, g.Weight(v))
				}
				for _, u := range g.Neighbors(v) {
					if a.Get(v, u).Sign() < 0 {
						t.Fatalf("%s trial %d: negative transfer x[%d][%d]", name, trial, v, u)
					}
				}
			}
		}
	}
}

// TestAllocateDeterministic: repeated runs must be bit-identical — the cache
// and tournament layers depend on it.
func TestAllocateDeterministic(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomRing(rand.New(rand.NewSource(3)), 7, graph.DistSkewed)
	for _, name := range Names() {
		m, _ := Get(name)
		a1, err := m.Allocate(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := m.Allocate(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAllocation(t, g, a1, a2)
	}
}

func TestPREdgeCases(t *testing.T) {
	ctx := context.Background()
	m := PR{}
	if _, err := m.Allocate(ctx, graph.New(0)); err == nil {
		t.Fatal("PR on empty graph succeeded")
	}
	if _, err := (EqSplit{}).Allocate(ctx, graph.New(0)); err == nil {
		t.Fatal("EqSplit on empty graph succeeded")
	}
	// Isolated and zero-weight vertices must not trip the iteration.
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustSetWeight(0, numeric.FromInt(2))
	g.MustSetWeight(1, numeric.Zero)
	a, err := m.Allocate(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SentBy(0).Equal(numeric.FromInt(2)) {
		t.Fatalf("vertex 0 sends %v, want 2", a.SentBy(0))
	}
	if !a.SentBy(2).IsZero() {
		t.Fatalf("isolated vertex sends %v", a.SentBy(2))
	}
	// Canceled context aborts the iteration.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.Allocate(cctx, graph.Ring(numeric.Ints(1, 2, 3, 4))); err == nil {
		t.Fatal("canceled PR allocate succeeded")
	}
}

// TestPRApproachesBDOnUniformRing: on a uniform ring the BD equilibrium is
// the equal split itself, which is also the PR fixed point — the iteration
// must land exactly on it.
func TestPRApproachesBDOnUniformRing(t *testing.T) {
	ctx := context.Background()
	g := graph.Ring(numeric.Ints(3, 3, 3, 3, 3))
	bd, err := BD{}.Allocate(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PR{}.Allocate(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAllocation(t, g, bd, pr)
}

func TestLatticeFloor(t *testing.T) {
	wv := numeric.FromInt(3)
	got := latticeFloor(numeric.New(1, 7), wv, 4) // 1/7 of 3 → ⌊16/21⌋·3/16 = 0
	if !got.IsZero() {
		t.Fatalf("latticeFloor(1/7) = %v, want 0", got)
	}
	got = latticeFloor(numeric.New(3, 2), wv, 4) // (3/2)/3·16 = 8 → 8·3/16 = 3/2
	if !got.Equal(numeric.New(3, 2)) {
		t.Fatalf("latticeFloor(3/2) = %v, want 3/2", got)
	}
	if !latticeFloor(numeric.FromInt(-1), wv, 4).IsZero() {
		t.Fatal("negative input must floor to zero")
	}
	if !pow2(70).Equal(pow2(35).Mul(pow2(35))) {
		t.Fatal("big pow2 inconsistent")
	}
}

func TestGenericSweepDelegatesForBD(t *testing.T) {
	ctx := context.Background()
	g := graph.Ring(numeric.Ints(4, 1, 5, 2, 3))
	want, err := sybil.RingSweepCtx(ctx, g, 0, sybil.SweepOptions{Grid: 16})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Get("bd")
	got, err := RingSweep(ctx, m, g, 0, sybil.SweepOptions{Grid: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Points, got.Points) || !want.Ratio.Equal(got.Ratio) {
		t.Fatal("BD generic sweep diverges from native sybil sweep")
	}
}

func TestGenericSweepSemantics(t *testing.T) {
	ctx := context.Background()
	g := graph.Ring(numeric.Ints(4, 1, 5, 2, 3))
	m, _ := Get("eqsplit")
	res, err := RingSweep(ctx, m, g, 0, sybil.SweepOptions{Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 || res.Partial {
		t.Fatalf("points %d partial %v, want 9 complete", len(res.Points), res.Partial)
	}
	// Endpoint check: w1 spans [0, W].
	if !res.Points[0].W1.IsZero() || !res.Points[8].W1.Equal(g.Weight(0)) {
		t.Fatalf("grid endpoints %v..%v", res.Points[0].W1, res.Points[8].W1)
	}
	// Earliest-max best rule.
	for i, p := range res.Points {
		if i < res.BestIndex && !p.U.Less(res.BestU) {
			t.Fatalf("point %d ties best %v but BestIndex is %d", i, res.BestU, res.BestIndex)
		}
		if res.BestU.Less(p.U) {
			t.Fatalf("point %d exceeds recorded best", i)
		}
	}
	if res.Honest.Sign() <= 0 || !res.Ratio.Equal(res.BestU.Div(res.Honest)) {
		t.Fatalf("ratio %v inconsistent with best %v / honest %v", res.Ratio, res.BestU, res.Honest)
	}
	// Start/resume: the tail of a full sweep equals a Start-offset sweep.
	tail, err := RingSweep(ctx, m, g, 0, sybil.SweepOptions{Grid: 8, Start: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail.Points, res.Points[5:]) {
		t.Fatal("Start-offset sweep diverges from full sweep tail")
	}
	// Validation errors.
	if _, err := RingSweep(ctx, m, g, 0, sybil.SweepOptions{Grid: 8, Start: 9}); err == nil {
		t.Fatal("out-of-range Start succeeded")
	}
	if _, err := RingSweep(ctx, m, g, 99, sybil.SweepOptions{}); err == nil {
		t.Fatal("out-of-range vertex succeeded")
	}
	tree := graph.RandomTree(rand.New(rand.NewSource(1)), 5, graph.DistUniform)
	if _, err := RingSweep(ctx, m, tree, 0, sybil.SweepOptions{}); err == nil {
		t.Fatal("non-ring sweep succeeded")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	canceled, err := RingSweep(cctx, m, g, 0, sybil.SweepOptions{Grid: 8})
	if err == nil && !canceled.Partial {
		t.Fatal("canceled sweep reported a complete result")
	}
}

func TestTournamentDeterministicAndSummarized(t *testing.T) {
	ctx := context.Background()
	instances := []TournamentInstance{
		{G: graph.Ring(numeric.Ints(4, 1, 5, 2, 3)), V: 0},
		{G: graph.Ring(numeric.Ints(2, 2, 9, 1)), V: 2},
	}
	opts := TournamentOptions{Grid: 8}
	res, err := Tournament(ctx, instances, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Mechanisms, []string{"bd", "eqsplit", "pr"}) {
		t.Fatalf("mechanisms %v", res.Mechanisms)
	}
	if len(res.Cells) != 2 || len(res.Cells[0]) != 3 || len(res.Summary) != 3 {
		t.Fatalf("shape: %d instances × %d cells, %d summaries", len(res.Cells), len(res.Cells[0]), len(res.Summary))
	}
	// Reversed, deduplicated selection yields the same sorted columns.
	opts2 := opts
	opts2.Mechanisms = []string{"pr", "bd", "eqsplit", "bd", ""}
	res2, err := Tournament(ctx, instances, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("tournament output depends on mechanism selection order")
	}
	// BD's empirical ratio stays within the paper's ζ ≤ 2 bound.
	for i := range res.Cells {
		if numeric.FromInt(2).Less(res.Cells[i][0].Ratio) {
			t.Fatalf("instance %d: bd ratio %v exceeds 2", i, res.Cells[i][0].Ratio)
		}
	}
	// Summaries must be reconstructible from the cells alone (the durable
	// job path) and exact.
	resum := Summarize(res.Mechanisms, res.Grid, res.Cells)
	if !reflect.DeepEqual(res, resum) {
		t.Fatal("Summarize(cells) diverges from Tournament result")
	}
	s := res.Summary[0]
	if s.Instances != 2 || s.MeanRatio.Less(numeric.One) {
		t.Fatalf("bd summary %+v", s)
	}
	// Error paths.
	if _, err := Tournament(ctx, nil, opts); err == nil {
		t.Fatal("empty tournament succeeded")
	}
	bad := opts
	bad.Mechanisms = []string{"nope"}
	if _, err := Tournament(ctx, instances, bad); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Tournament(cctx, instances, opts); err == nil {
		t.Fatal("canceled tournament succeeded")
	}
}

func TestEvaluateCellMetrics(t *testing.T) {
	ctx := context.Background()
	g := graph.Ring(numeric.Ints(1, 1, 1, 1))
	m, _ := Get("eqsplit")
	cell, err := EvaluateCell(ctx, m, g, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform ring under equal split: everyone gets their weight back.
	if !cell.Efficiency.Equal(numeric.FromInt(4)) || !cell.Fairness.Equal(numeric.One) {
		t.Fatalf("cell %+v", cell)
	}
	if !cell.Honest.Equal(numeric.One) {
		t.Fatalf("honest %v, want 1", cell.Honest)
	}
}

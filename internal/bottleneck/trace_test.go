package bottleneck

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestDecomposeTracedEmitsEvents(t *testing.T) {
	g := graph.Ring(numeric.Ints(1, 100, 1, 5, 5))
	var events []TraceEvent
	d, err := DecomposeTraced(g, EngineAuto, func(e TraceEvent) {
		events = append(events, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Must match the untraced result exactly.
	plain, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if !decompositionsEqual(d, plain) {
		t.Fatal("traced decomposition differs from plain")
	}
	starts, iters, extracted := 0, 0, 0
	for _, e := range events {
		switch e.Kind {
		case TraceStageStart:
			starts++
		case TraceDinkelbachIter:
			iters++
			if e.Lambda.Sign() <= 0 {
				t.Fatalf("non-positive λ in trace: %v", e)
			}
			if e.Value.Sign() > 0 {
				t.Fatalf("positive subproblem minimum in trace: %v", e)
			}
		case TraceStageExtracted:
			extracted++
			if e.Pair == nil {
				t.Fatal("extracted event without pair")
			}
		}
	}
	if starts != len(d.Pairs) || extracted != len(d.Pairs) {
		t.Fatalf("starts=%d extracted=%d pairs=%d", starts, extracted, len(d.Pairs))
	}
	if iters < len(d.Pairs) {
		t.Fatalf("expected at least one Dinkelbach iteration per stage, got %d", iters)
	}
	// The last iteration of every stage must report g(λ) = 0 exactly.
	var lastPerStage = map[int]numeric.Rat{}
	for _, e := range events {
		if e.Kind == TraceDinkelbachIter {
			lastPerStage[e.Stage] = e.Value
		}
	}
	for stage, v := range lastPerStage {
		if !v.IsZero() {
			t.Fatalf("stage %d final g(λ) = %v, want 0", stage, v)
		}
	}
}

func TestTraceEventStrings(t *testing.T) {
	p := Pair{B: []int{1}, C: []int{0, 2}, Alpha: numeric.New(1, 50)}
	cases := []struct {
		e    TraceEvent
		want string
	}{
		{TraceEvent{Kind: TraceStageStart, Stage: 1, Remaining: 5}, "stage 1: solving residual graph of 5 vertices"},
		{TraceEvent{Kind: TraceDinkelbachIter, Stage: 2, Lambda: numeric.One, Value: numeric.Zero}, "stage 2: λ = 1, g(λ) = 0"},
		{TraceEvent{Kind: TraceStageExtracted, Stage: 1, Pair: &p}, "stage 1: extracted (B{1}, C{0,2}, α=1/50)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(TraceStageStart.String(), "stage-start") {
		t.Error("TraceKind.String wrong")
	}
}

package client

import (
	"context"
	"errors"
	"testing"

	"repro/internal/server"
)

// TestClientMechanismEndpoints drives the mechanism surface end to end
// through the retrying client: discovery, mechanism-tagged compute, the
// unknown_mechanism error, an inline tournament, and a durable tournament
// job whose Result matches the inline body's cells.
func TestClientMechanismEndpoints(t *testing.T) {
	ts := newService(t, server.Config{MaxQueueDepth: -1, DataDir: t.TempDir()})
	c := New(ts.URL, fastBackoff(), WithSeed(1))
	ctx := context.Background()
	ring := Graph{Ring: []string{"3", "1", "2", "1", "5"}}

	ms, err := c.Mechanisms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Default != "bd" || len(ms.Mechanisms) < 3 {
		t.Fatalf("mechanisms: %+v", ms)
	}
	for i := 1; i < len(ms.Mechanisms); i++ {
		if ms.Mechanisms[i-1].Name >= ms.Mechanisms[i].Name {
			t.Fatalf("discovery listing not sorted: %+v", ms.Mechanisms)
		}
	}

	// Mechanism-tagged compute: bd explicit == bd default, eqsplit differs.
	bare, err := c.Ratio(ctx, &RatioRequest{Graph: ring, V: 0, Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := c.Ratio(ctx, &RatioRequest{Graph: ring, V: 0, Grid: 8, Mechanism: "bd"})
	if err != nil {
		t.Fatal(err)
	}
	if *bare != *tagged {
		t.Fatalf("explicit bd diverges: %+v vs %+v", bare, tagged)
	}
	if _, err := c.Ratio(ctx, &RatioRequest{Graph: ring, V: 0, Mechanism: "quantum"}); err == nil {
		t.Fatal("unknown mechanism accepted")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != server.CodeUnknownMechanism {
			t.Fatalf("unknown mechanism error = %v", err)
		}
	}

	// Inline tournament, then the durable job form of the same request.
	req := TournamentRequest{
		Instances:  []TournamentInstance{{Graph: ring, V: 0}},
		Mechanisms: []string{"bd", "eqsplit"},
		Grid:       8,
	}
	res, err := c.Tournament(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || len(res.Cells[0]) != 2 || res.Cells[0][0].Mechanism != "bd" {
		t.Fatalf("tournament: %+v", res)
	}

	sub, err := c.SubmitJob(ctx, &JobSubmitRequest{Kind: "tournament", Tournament: &req})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.WaitJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || job.TotalPoints != 2 {
		t.Fatalf("tournament job: %+v", job)
	}
}
